//! Pluggable wire backends.
//!
//! Everything in ARMCI-MPI that issues wire traffic — epoch bracketing,
//! blocking and request-based data movement, the coalescing scheduler's
//! staged payloads and merged-run issue, byte-protocol accesses (the
//! Latham mutex queue), and atomic read-modify-write — goes through the
//! object-safe [`Transport`] trait. Three implementations exist:
//!
//! * [`MpiRmaTransport`] — the paper's backend: MPI-2 per-op passive
//!   epochs (`lock`/`unlock`) or the MPI-3 epochless discipline
//!   (`lock_all` at attach, `flush` per access context), delegating 1:1
//!   to the [`WinHandle`] entry points;
//! * [`ShmTransport`] — the intra-node tier: same epoch discipline, but
//!   payloads move as node-local load/store/accumulate priced by the
//!   platform's shm parameters ([`crate::shm`] owns the `win_sync`
//!   coherence bracketing around it);
//! * [`ChannelTransport`] — a RAMC-style remote-memory-channel model:
//!   no MPI epochs at all; contiguous puts/gets are offloaded
//!   doorbell-ring + completion-queue operations, noncontiguous and
//!   accumulate traffic takes a software fallback path, and atomics run
//!   on the NIC. Selected with [`Config::transport`](crate::Config).
//!
//! The trait is *stateless with respect to windows*: every method takes
//! the [`WinHandle`] it operates on, so one boxed backend serves every
//! GMR of the process. Cost attribution happens inside the backend
//! (each method charges the issuing rank's virtual clock); congestion
//! pricing flows through [`WinHandle::net_extra`] on both backends.

mod channel;

pub use channel::ChannelTransport;

use mpisim::dtype::Datatype;
use mpisim::mpi3::{FetchOp, RmaRequest};
use mpisim::{AccOp, ElemType, LockMode, MpiResult, RmaClass, WinHandle};

/// Which wire backend a runtime instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// MPI passive-target RMA (the paper's implementation).
    #[default]
    MpiRma,
    /// RAMC-style remote memory channels (doorbell + completion queue).
    Channel,
}

/// How a backend brackets access contexts, for epoch statistics and the
/// engine's aggregate-epoch bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochStyle {
    /// A per-target lock/unlock pair per access context (MPI-2).
    PerOp,
    /// A standing `lock_all` epoch; contexts close with `flush` (MPI-3
    /// epochless).
    Flush,
    /// No epochs: the backend orders its own traffic (channel).
    None,
}

/// How a backend relates to asynchronous progress agents
/// ([`crate::ProgressMode`]): whether its passive-target traffic can be
/// drained by a per-node agent while the target computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressSupport {
    /// The backend's software-progressed rounds (epochs, accumulates,
    /// software atomics, flush acknowledgements) can route through a
    /// per-node agent.
    Agent,
    /// Remote completion is hardware-asynchronous already (NIC or
    /// load/store); an agent has nothing to drain.
    Hardware,
    /// The backend cannot route through an agent;
    /// [`armci::ArmciError::ProgressUnsupported`] when one is forced.
    Unsupported,
}

/// Offload counters a backend may expose (zero for backends without an
/// offload distinction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Operations the backend completed in "hardware" (e.g. contiguous
    /// channel puts/gets and NIC atomics).
    pub offloaded: u64,
    /// Operations that took the backend's software fallback path.
    pub fallback: u64,
}

/// An object-safe wire backend. See the module docs for the contract;
/// the blanket rules are:
///
/// * `epoch_begin`/`epoch_end` bracket one access context on one target
///   (data transfers). Backends without per-target epochs make them
///   no-ops.
/// * `atomic_epoch_begin`/`atomic_epoch_end` bracket a byte-protocol
///   sequence that must execute atomically with respect to other ranks'
///   sequences (the Latham mutex's put-then-snapshot). Every backend
///   must provide real mutual exclusion here; the default takes the
///   window lock unless a standing `lock_all` already covers it.
/// * Blocking data movement (`put`/`get`/`accumulate`) validates,
///   moves payload, and charges its full cost. Request-based movement
///   (`rput`/`rget`/`racc`) moves payload eagerly, charges issue
///   overhead, and defers the rest to `complete`.
/// * `stage_*` move scheduler-deferred payload without pricing;
///   `issue_merged` prices (without charging) one coalesced run whose
///   bytes already moved.
#[allow(clippy::too_many_arguments)] // mirrors the MPI RMA signatures
pub trait Transport {
    /// Backend name, as recorded in benchmarks and trace events.
    fn name(&self) -> &'static str;

    /// The backend's epoch discipline.
    fn epoch_style(&self) -> EpochStyle;

    /// Window-lifetime setup at GMR creation (e.g. the epochless
    /// backend's `lock_all`).
    fn attach(&self, win: &WinHandle) -> MpiResult<()>;

    /// Window-lifetime teardown before the window is freed.
    fn detach(&self, win: &WinHandle) -> MpiResult<()>;

    /// Opens an access context on `target`.
    fn epoch_begin(&self, win: &WinHandle, target: usize, mode: LockMode) -> MpiResult<()>;

    /// Closes the access context on `target` (unlock, flush, or nothing
    /// per [`Transport::epoch_style`]).
    fn epoch_end(&self, win: &WinHandle, target: usize) -> MpiResult<()>;

    /// Opens a mutual-exclusion context for a byte-protocol sequence.
    fn atomic_epoch_begin(&self, win: &WinHandle, target: usize, mode: LockMode) -> MpiResult<()> {
        if win.lock_all_is_active() {
            Ok(())
        } else {
            win.lock(mode, target)
        }
    }

    /// Closes the mutual-exclusion context.
    fn atomic_epoch_end(&self, win: &WinHandle, target: usize) -> MpiResult<()> {
        if win.lock_all_is_active() {
            Ok(())
        } else {
            win.unlock(target)
        }
    }

    /// Blocking one-sided put inside an open access context.
    fn put(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()>;

    /// Blocking one-sided get.
    fn get(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()>;

    /// Blocking one-sided accumulate (element-atomic at the target).
    fn accumulate(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<()>;

    /// Contiguous-put convenience (byte protocols).
    fn put_bytes(
        &self,
        win: &WinHandle,
        origin: &[u8],
        target: usize,
        tdisp: usize,
    ) -> MpiResult<()> {
        let dt = Datatype::contiguous(origin.len());
        self.put(win, origin, &dt.clone(), target, tdisp, &dt)
    }

    /// Contiguous-get convenience (byte protocols).
    fn get_bytes(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        target: usize,
        tdisp: usize,
    ) -> MpiResult<()> {
        let dt = Datatype::contiguous(origin.len());
        self.get(win, origin, &dt.clone(), target, tdisp, &dt)
    }

    /// Request-based put: payload moves now, completion is deferred.
    fn rput(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest>;

    /// Request-based get.
    fn rget(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest>;

    /// Request-based accumulate.
    fn racc(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<RmaRequest>;

    /// Completes a request, advancing the virtual clock to its remote
    /// completion time.
    fn complete(&self, win: &WinHandle, req: RmaRequest) {
        req.wait(win);
    }

    /// Moves scheduler-deferred put payload (no pricing, no admission).
    fn stage_put(
        &self,
        win: &WinHandle,
        origin: &[u8],
        target: usize,
        tdisp: usize,
    ) -> MpiResult<()> {
        win.stage_put_bytes(origin, target, tdisp)
    }

    /// Moves scheduler-deferred get payload.
    fn stage_get(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        target: usize,
        tdisp: usize,
    ) -> MpiResult<()> {
        win.stage_get_bytes(origin, target, tdisp)
    }

    /// Applies scheduler-deferred accumulate payload (element-atomic).
    fn stage_acc(
        &self,
        win: &WinHandle,
        origin: &[u8],
        target: usize,
        tdisp: usize,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<()> {
        win.stage_acc_bytes(origin, target, tdisp, elem, op)
    }

    /// Prices one coalesced run of same-class operations whose bytes
    /// already moved through the `stage_*` movers. Returns the
    /// virtual-time cost for the scheduler to charge or defer.
    fn issue_merged(
        &self,
        win: &WinHandle,
        class: RmaClass,
        target: usize,
        segs: &[(usize, usize)],
    ) -> MpiResult<f64>;

    /// Atomic fetch-and-op on a 64-bit integer cell, including whatever
    /// bracketing the backend needs for atomicity.
    fn fetch_and_op_i64(
        &self,
        win: &WinHandle,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<i64>;

    /// Atomic operand widths (in bytes) this backend can price natively.
    /// The `AtomicsMode::Auto` selector keys off whether 8 is present;
    /// asking for an absent width surfaces
    /// `ArmciError::AtomicUnsupported` instead of a silent software
    /// emulation with a different atomicity domain.
    fn atomic_widths(&self) -> &'static [usize] {
        &[8]
    }

    /// Atomic compare-and-swap on a 64-bit integer cell, including
    /// whatever bracketing the backend needs for atomicity. The default
    /// brackets the window's RMW primitive with the atomic-epoch hooks,
    /// which is correct for every MPI-epoch-disciplined backend.
    fn compare_and_swap_i64(
        &self,
        win: &WinHandle,
        compare: i64,
        swap: i64,
        target: usize,
        tdisp: usize,
    ) -> MpiResult<i64> {
        self.atomic_epoch_begin(win, target, LockMode::Shared)?;
        let res = win.compare_and_swap_i64(compare, swap, target, tdisp);
        let end = self.atomic_epoch_end(win, target);
        let v = res?;
        end?;
        Ok(v)
    }

    /// Request-based fetch-and-op: the fetched value is available at
    /// issue (ordering against other atomics is decided now), the rest
    /// of the round trip is deferred to the returned request. Backends
    /// without deferred atomics complete eagerly with a zero-length
    /// deferral.
    fn rfetch_and_op_i64(
        &self,
        win: &WinHandle,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<(i64, RmaRequest)> {
        let v = self.fetch_and_op_i64(win, operand, target, tdisp, op)?;
        Ok((v, win.defer(0.0, 0.0)))
    }

    /// Whether this backend's passive-target traffic can route through a
    /// per-node progress agent. Conservative default: it cannot.
    fn progress_support(&self) -> ProgressSupport {
        ProgressSupport::Unsupported
    }

    /// Offload counters (zero for backends without the distinction).
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

/// Builds the wire backend for a configuration.
pub fn for_kind(kind: TransportKind, epochless: bool) -> Box<dyn Transport> {
    match kind {
        TransportKind::MpiRma => Box::new(MpiRmaTransport { epochless }),
        TransportKind::Channel => Box::new(ChannelTransport::new()),
    }
}

/// The paper's backend: MPI passive-target RMA, in per-op-epoch (MPI-2)
/// or epochless (`lock_all` + `flush`, §VIII-B(2)) discipline. Every
/// method delegates 1:1 to the corresponding [`WinHandle`] entry point,
/// so behaviour and pricing are bit-identical to the pre-trait runtime.
#[derive(Debug, Clone, Copy)]
pub struct MpiRmaTransport {
    /// MPI-3 epochless mode: `lock_all` at attach, `flush` at context
    /// close, no per-target locks.
    pub epochless: bool,
}

impl Transport for MpiRmaTransport {
    fn name(&self) -> &'static str {
        "mpi-rma"
    }

    fn epoch_style(&self) -> EpochStyle {
        if self.epochless {
            EpochStyle::Flush
        } else {
            EpochStyle::PerOp
        }
    }

    fn attach(&self, win: &WinHandle) -> MpiResult<()> {
        if self.epochless {
            win.lock_all()
        } else {
            Ok(())
        }
    }

    fn detach(&self, win: &WinHandle) -> MpiResult<()> {
        if self.epochless {
            win.unlock_all()
        } else {
            Ok(())
        }
    }

    fn epoch_begin(&self, win: &WinHandle, target: usize, mode: LockMode) -> MpiResult<()> {
        if self.epochless {
            Ok(())
        } else {
            win.lock(mode, target)
        }
    }

    fn epoch_end(&self, win: &WinHandle, target: usize) -> MpiResult<()> {
        if self.epochless {
            win.flush(target)
        } else {
            win.unlock(target)
        }
    }

    fn put(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        win.put(origin, odt, target, tdisp, tdt)
    }

    fn get(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        win.get(origin, odt, target, tdisp, tdt)
    }

    fn accumulate(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<()> {
        win.accumulate(origin, odt, target, tdisp, tdt, elem, op)
    }

    fn put_bytes(
        &self,
        win: &WinHandle,
        origin: &[u8],
        target: usize,
        tdisp: usize,
    ) -> MpiResult<()> {
        win.put_bytes(origin, target, tdisp)
    }

    fn get_bytes(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        target: usize,
        tdisp: usize,
    ) -> MpiResult<()> {
        win.get_bytes(origin, target, tdisp)
    }

    fn rput(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        win.rput(origin, odt, target, tdisp, tdt)
    }

    fn rget(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        win.rget(origin, odt, target, tdisp, tdt)
    }

    fn racc(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<RmaRequest> {
        win.racc(origin, odt, target, tdisp, tdt, elem, op)
    }

    fn issue_merged(
        &self,
        win: &WinHandle,
        class: RmaClass,
        target: usize,
        segs: &[(usize, usize)],
    ) -> MpiResult<f64> {
        win.issue_merged(class, target, segs)
    }

    fn fetch_and_op_i64(
        &self,
        win: &WinHandle,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<i64> {
        if self.epochless {
            return win.fetch_and_op_i64(operand, target, tdisp, op);
        }
        win.lock(LockMode::Shared, target)?;
        let res = win.fetch_and_op_i64(operand, target, tdisp, op);
        let end = win.unlock(target);
        let v = res?;
        end?;
        Ok(v)
    }

    fn rfetch_and_op_i64(
        &self,
        win: &WinHandle,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<(i64, RmaRequest)> {
        if self.epochless {
            // The standing `lock_all` covers the access; completion rides
            // the request so the RMW joins coalesced/epochless batches.
            return win.rfetch_and_op_i64(operand, target, tdisp, op);
        }
        // Per-op discipline: the exclusive unlock is the completion
        // point, so there is nothing left to defer.
        let v = self.fetch_and_op_i64(win, operand, target, tdisp, op)?;
        Ok((v, win.defer(0.0, 0.0)))
    }

    fn progress_support(&self) -> ProgressSupport {
        // Lock grants, software accumulates and flush acknowledgements
        // all need target-side MPI calls — exactly what an agent drains.
        ProgressSupport::Agent
    }
}

/// The intra-node tier as a transport: epoch discipline identical to
/// [`MpiRmaTransport`], data movement as node-local load/store/accumulate
/// priced (and charged) from the platform's shm parameters. The
/// `win_sync` coherence bracketing stays with the caller
/// ([`crate::shm`]) — it is a memory-model fence, not wire traffic.
///
/// `epochless` is only honoured when the wire backend is MPI RMA (the
/// standing `lock_all` is what makes lock-free `win_sync` legal); under
/// the channel backend the shm tier always locks.
#[derive(Debug, Clone, Copy)]
pub struct ShmTransport {
    epochless: bool,
}

impl ShmTransport {
    /// `epochless` must already account for the wire backend (see type
    /// docs).
    pub fn new(epochless: bool) -> ShmTransport {
        ShmTransport { epochless }
    }
}

impl Transport for ShmTransport {
    fn name(&self) -> &'static str {
        "shm"
    }

    fn epoch_style(&self) -> EpochStyle {
        if self.epochless {
            EpochStyle::Flush
        } else {
            EpochStyle::PerOp
        }
    }

    fn attach(&self, _win: &WinHandle) -> MpiResult<()> {
        Ok(())
    }

    fn detach(&self, _win: &WinHandle) -> MpiResult<()> {
        Ok(())
    }

    fn epoch_begin(&self, win: &WinHandle, target: usize, mode: LockMode) -> MpiResult<()> {
        if self.epochless {
            Ok(())
        } else {
            win.lock(mode, target)
        }
    }

    fn epoch_end(&self, win: &WinHandle, target: usize) -> MpiResult<()> {
        if self.epochless {
            win.flush(target)
        } else {
            win.unlock(target)
        }
    }

    fn put(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        let cost = win.shm_put(origin, odt, target, tdisp, tdt)?;
        win.charge_virtual(cost);
        Ok(())
    }

    fn get(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        let cost = win.shm_get(origin, odt, target, tdisp, tdt)?;
        win.charge_virtual(cost);
        Ok(())
    }

    fn accumulate(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<()> {
        let cost = win.shm_acc(origin, odt, target, tdisp, tdt, elem, op)?;
        win.charge_virtual(cost);
        Ok(())
    }

    fn rput(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        // Node-local copies have no wire latency to overlap; complete
        // eagerly (a zero-length deferral).
        self.put(win, origin, odt, target, tdisp, tdt)?;
        Ok(win.defer(0.0, 0.0))
    }

    fn rget(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        self.get(win, origin, odt, target, tdisp, tdt)?;
        Ok(win.defer(0.0, 0.0))
    }

    fn racc(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<RmaRequest> {
        self.accumulate(win, origin, odt, target, tdisp, tdt, elem, op)?;
        Ok(win.defer(0.0, 0.0))
    }

    fn issue_merged(
        &self,
        _win: &WinHandle,
        _class: RmaClass,
        _target: usize,
        _segs: &[(usize, usize)],
    ) -> MpiResult<f64> {
        // The engine never schedules node-local plans (they bypass the
        // coalescer and complete eagerly), so nothing can reach here.
        Ok(0.0)
    }

    fn fetch_and_op_i64(
        &self,
        win: &WinHandle,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<i64> {
        // Slab atomics are processor atomics on the shared mapping: no
        // epoch, no wire latency — priced as one cacheline RMW. The
        // io-lock inside the cell mutator provides the atomicity.
        win.fetch_and_op_i64_priced(operand, target, tdisp, op, win.shm_params().atomic_cost())
    }

    fn compare_and_swap_i64(
        &self,
        win: &WinHandle,
        compare: i64,
        swap: i64,
        target: usize,
        tdisp: usize,
    ) -> MpiResult<i64> {
        win.compare_and_swap_i64_priced(
            compare,
            swap,
            target,
            tdisp,
            win.shm_params().atomic_cost(),
        )
    }

    fn progress_support(&self) -> ProgressSupport {
        // Node-local load/store completes without the target CPU.
        ProgressSupport::Hardware
    }
}
