//! RAMC-style remote-memory-channel backend.
//!
//! Models a NIC that exposes remote memory through hardware channels
//! instead of the MPI software stack: the initiator rings a doorbell
//! with a descriptor, the NIC moves contiguous payload directly, and a
//! completion-queue entry signals the finish. There are no MPI epochs —
//! the channel orders its own traffic — so access contexts are free and
//! conflicting accesses are the application's problem (as on real RDMA
//! hardware).
//!
//! * **Offloaded path** — single-segment put/get: one doorbell, one DMA,
//!   one CQ poll ([`ChannelParams::contig_cost`]).
//! * **Software fallback** — noncontiguous transfers and every
//!   accumulate: the library walks segments, rings a doorbell per
//!   segment, and (for accumulate) combines at software rates
//!   ([`ChannelParams::sw_cost`] + [`ChannelParams::combine_cost`]).
//! * **NIC atomics** — fetch-and-op and compare-and-swap execute on the
//!   NIC with no epoch, priced as doorbell + wire round trip + CQ poll
//!   ([`simnet::ChannelParams::atomic_cost`] via
//!   [`WinHandle::fetch_and_op_i64_priced`]).
//!
//! Payloads move through the window's bounds-checked staging movers, so
//! the bytes delivered are bit-identical to the MPI-RMA backend's — only
//! pricing, events, and epoch traffic differ. Under the congestion-aware
//! network model, each segment counts as one injected message
//! ([`WinHandle::net_extra`] with `msgs = nsegs`).

use super::{EpochStyle, ProgressSupport, Transport, TransportStats};
use mpisim::dtype::{zip_segments, Datatype};
use mpisim::mpi3::{FetchOp, RmaRequest};
use mpisim::{AccOp, ElemType, LockMode, MpiError, MpiResult, RmaClass, WinHandle};
use simnet::ChannelParams;
use std::cell::Cell;

/// One channel transfer, priced. `offloaded` means the NIC handled it
/// end-to-end (contiguous, no combine).
struct Priced {
    cost: f64,
    offloaded: bool,
}

/// The channel wire backend. Stateless per window; the only state is a
/// pair of offload counters surfaced through [`Transport::stats`].
#[derive(Debug, Default)]
pub struct ChannelTransport {
    offloaded: Cell<u64>,
    fallback: Cell<u64>,
}

impl ChannelTransport {
    /// A fresh backend with zeroed counters.
    pub fn new() -> ChannelTransport {
        ChannelTransport::default()
    }

    /// Replicates the wire path's origin-buffer validation: the origin
    /// datatype must fit in the caller's buffer.
    fn check_origin(origin_len: usize, odt: &Datatype) -> MpiResult<()> {
        if odt.extent() > origin_len {
            return Err(MpiError::BadDatatype(format!(
                "origin datatype extent {} exceeds buffer {}",
                odt.extent(),
                origin_len
            )));
        }
        Ok(())
    }

    /// Prices one transfer and classifies it offloaded/fallback.
    fn price(p: &ChannelParams, bytes: usize, nsegs: usize, combine: bool) -> Priced {
        if nsegs <= 1 && !combine {
            Priced {
                cost: p.contig_cost(bytes),
                offloaded: true,
            }
        } else {
            let mut cost = p.sw_cost(bytes, nsegs);
            if combine {
                cost += p.combine_cost(bytes);
            }
            Priced {
                cost,
                offloaded: false,
            }
        }
    }

    /// Counts the op, emits its trace event, and returns the total cost
    /// (channel pricing plus congestion delay) for the caller to charge
    /// or defer.
    fn account(
        &self,
        win: &WinHandle,
        kind: obs::OpKind,
        target: usize,
        bytes: usize,
        nsegs: usize,
        priced: &Priced,
    ) -> f64 {
        if priced.offloaded {
            self.offloaded.set(self.offloaded.get() + 1);
        } else {
            self.fallback.set(self.fallback.get() + 1);
        }
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::TransportIssue {
                    backend: "channel",
                    win: win.id(),
                    target: target as u32,
                    kind,
                    bytes: bytes as u64,
                    offloaded: priced.offloaded,
                },
                win.vnow(),
            );
        }
        let extra = win.net_extra(
            target,
            win.channel_params().ser_time(bytes),
            nsegs.max(1) as u64,
        );
        // Offloaded transfers complete on the NIC regardless of the
        // target CPU; only the software fallback needs the target (or
        // its node's agent) to service the request.
        let prog = if priced.offloaded {
            0.0
        } else {
            win.progress_extra(target, 1)
        };
        priced.cost + extra + prog
    }

    /// Moves put payload segment-by-segment and returns the priced total.
    fn put_priced(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<f64> {
        Self::check_origin(origin.len(), odt)?;
        let pairs = zip_segments(odt, tdt)?;
        for &(ooff, toff, len) in &pairs {
            win.stage_put_bytes(&origin[ooff..ooff + len], target, tdisp + toff)?;
        }
        let bytes = odt.size();
        let nsegs = odt.num_segments().max(tdt.num_segments());
        let priced = Self::price(win.channel_params(), bytes, nsegs, false);
        Ok(self.account(win, obs::OpKind::Put, target, bytes, nsegs, &priced))
    }

    /// Moves get payload and returns the priced total.
    fn get_priced(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<f64> {
        Self::check_origin(origin.len(), odt)?;
        let pairs = zip_segments(odt, tdt)?;
        for &(ooff, toff, len) in &pairs {
            win.stage_get_bytes(&mut origin[ooff..ooff + len], target, tdisp + toff)?;
        }
        let bytes = odt.size();
        let nsegs = odt.num_segments().max(tdt.num_segments());
        let priced = Self::price(win.channel_params(), bytes, nsegs, false);
        Ok(self.account(win, obs::OpKind::Get, target, bytes, nsegs, &priced))
    }

    /// Applies accumulate payload (element-atomic per target segment via
    /// the staging mover's slab lock) and returns the priced total. The
    /// wire path's validation is replicated: element-multiple size,
    /// matching origin/target sizes, element-aligned target segments
    /// (checked by the mover).
    #[allow(clippy::too_many_arguments)]
    fn acc_priced(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<f64> {
        let es = elem.size();
        if !odt.size().is_multiple_of(es) {
            return Err(MpiError::BadDatatype(format!(
                "accumulate of {} bytes not a multiple of element size {es}",
                odt.size()
            )));
        }
        Self::check_origin(origin.len(), odt)?;
        if odt.size() != tdt.size() {
            return Err(MpiError::TypeMismatch {
                origin_bytes: odt.size(),
                target_bytes: tdt.size(),
            });
        }
        // Gather the origin selection contiguously, then combine per
        // target segment — the same shape as the wire path, so origin
        // segments need not be element-aligned, only target ones.
        let mut staged = vec![0u8; odt.size()];
        let mut w = 0usize;
        for (off, len) in odt.segments() {
            staged[w..w + len].copy_from_slice(&origin[off..off + len]);
            w += len;
        }
        let mut s = 0usize;
        for (toff, len) in tdt.segments() {
            win.stage_acc_bytes(&staged[s..s + len], target, tdisp + toff, elem, op)?;
            s += len;
        }
        let bytes = odt.size();
        let nsegs = odt.num_segments().max(tdt.num_segments());
        let priced = Self::price(win.channel_params(), bytes, nsegs, true);
        Ok(self.account(win, obs::OpKind::Acc, target, bytes, nsegs, &priced))
    }

    /// Total cost of one NIC atomic to `target`: the channel atomic
    /// price plus congestion delay for its single 8-byte message.
    fn atomic_total(&self, win: &WinHandle, target: usize) -> f64 {
        win.channel_params().atomic_cost()
            + win.net_extra(target, win.channel_params().ser_time(8), 1)
    }

    /// Counts one offloaded NIC atomic and emits its trace event.
    fn account_atomic(&self, win: &WinHandle, target: usize) {
        self.offloaded.set(self.offloaded.get() + 1);
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::TransportIssue {
                    backend: "channel",
                    win: win.id(),
                    target: target as u32,
                    kind: obs::OpKind::Rmw,
                    bytes: 8,
                    offloaded: true,
                },
                win.vnow(),
            );
        }
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn epoch_style(&self) -> EpochStyle {
        EpochStyle::None
    }

    fn attach(&self, _win: &WinHandle) -> MpiResult<()> {
        Ok(())
    }

    fn detach(&self, _win: &WinHandle) -> MpiResult<()> {
        Ok(())
    }

    fn epoch_begin(&self, _win: &WinHandle, _target: usize, _mode: LockMode) -> MpiResult<()> {
        Ok(())
    }

    fn epoch_end(&self, _win: &WinHandle, _target: usize) -> MpiResult<()> {
        Ok(())
    }

    fn put(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        let total = self.put_priced(win, origin, odt, target, tdisp, tdt)?;
        win.charge_virtual(total);
        Ok(())
    }

    fn get(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<()> {
        let total = self.get_priced(win, origin, odt, target, tdisp, tdt)?;
        win.charge_virtual(total);
        Ok(())
    }

    fn accumulate(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<()> {
        let total = self.acc_priced(win, origin, odt, target, tdisp, tdt, elem, op)?;
        win.charge_virtual(total);
        Ok(())
    }

    fn rput(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        let total = self.put_priced(win, origin, odt, target, tdisp, tdt)?;
        let issue = win.channel_params().doorbell.min(total);
        Ok(win.defer(issue, total))
    }

    fn rget(
        &self,
        win: &WinHandle,
        origin: &mut [u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
    ) -> MpiResult<RmaRequest> {
        let total = self.get_priced(win, origin, odt, target, tdisp, tdt)?;
        let issue = win.channel_params().doorbell.min(total);
        Ok(win.defer(issue, total))
    }

    fn racc(
        &self,
        win: &WinHandle,
        origin: &[u8],
        odt: &Datatype,
        target: usize,
        tdisp: usize,
        tdt: &Datatype,
        elem: ElemType,
        op: AccOp,
    ) -> MpiResult<RmaRequest> {
        let total = self.acc_priced(win, origin, odt, target, tdisp, tdt, elem, op)?;
        let issue = win.channel_params().doorbell.min(total);
        Ok(win.defer(issue, total))
    }

    fn issue_merged(
        &self,
        win: &WinHandle,
        class: RmaClass,
        target: usize,
        segs: &[(usize, usize)],
    ) -> MpiResult<f64> {
        // Bytes already moved through the stage movers (bounds-checked
        // there); merged runs always take the software path — the NIC
        // offload is contiguous-only.
        let bytes: usize = segs.iter().map(|&(_, len)| len).sum();
        let nsegs = segs.len().max(1);
        let p = win.channel_params();
        let (combine, kind) = match class {
            RmaClass::Acc(..) => (true, obs::OpKind::Acc),
            RmaClass::Put => (false, obs::OpKind::Put),
            RmaClass::Get => (false, obs::OpKind::Get),
        };
        let mut cost = p.sw_cost(bytes, nsegs);
        if combine {
            cost += p.combine_cost(bytes);
        }
        let priced = Priced {
            cost,
            offloaded: false,
        };
        Ok(self.account(win, kind, target, bytes, nsegs, &priced))
    }

    fn fetch_and_op_i64(
        &self,
        win: &WinHandle,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<i64> {
        let cost = self.atomic_total(win, target);
        let old = win.fetch_and_op_i64_priced(operand, target, tdisp, op, cost)?;
        self.account_atomic(win, target);
        Ok(old)
    }

    fn compare_and_swap_i64(
        &self,
        win: &WinHandle,
        compare: i64,
        swap: i64,
        target: usize,
        tdisp: usize,
    ) -> MpiResult<i64> {
        let cost = self.atomic_total(win, target);
        let old = win.compare_and_swap_i64_priced(compare, swap, target, tdisp, cost)?;
        self.account_atomic(win, target);
        Ok(old)
    }

    fn rfetch_and_op_i64(
        &self,
        win: &WinHandle,
        operand: i64,
        target: usize,
        tdisp: usize,
        op: FetchOp,
    ) -> MpiResult<(i64, RmaRequest)> {
        // Doorbell now; wire round trip + CQ poll reaped at completion.
        let total = self.atomic_total(win, target);
        let issue = win.channel_params().doorbell.min(total);
        let pair = win.rfetch_and_op_i64_priced(operand, target, tdisp, op, issue, total)?;
        self.account_atomic(win, target);
        Ok(pair)
    }

    fn progress_support(&self) -> ProgressSupport {
        // The software fallback (noncontiguous, accumulate combine) is
        // serviced by the target's runtime; an agent can drain it. The
        // offloaded contiguous/NIC-atomic paths never stall either way.
        ProgressSupport::Agent
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            offloaded: self.offloaded.get(),
            fallback: self.fallback.get(),
        }
    }
}
