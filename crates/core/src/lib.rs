//! **ARMCI-MPI** — the paper's primary contribution: a complete
//! implementation of the ARMCI one-sided runtime on top of MPI passive-
//! target RMA (here, the [`mpisim`] substrate).
//!
//! The design follows Section V of the paper:
//!
//! * **GMR** (global memory regions, [`gmr`]) translate ARMCI global
//!   addresses `⟨process, address⟩` to `(window, rank, displacement)`
//!   triples, and back out group ranks from absolute ids;
//! * every one-sided operation runs inside **its own exclusive passive
//!   epoch** (§V-C), which avoids MPI-2's erroneous conflicting-access
//!   patterns, gives ARMCI's location consistency for free, and makes
//!   `ARMCI_Fence` a no-op (§V-F);
//! * **access-mode hints** (§VIII-A, [`armci::AccessMode`]) relax the
//!   exclusive locks to shared ones for read-only and accumulate-only
//!   phases;
//! * noncontiguous transfers implement all four IOV methods —
//!   *conservative*, *batched*, *direct datatype* and *auto* with the
//!   [`ctree`] conflict scan (§VI-A/B) — and both strided translations:
//!   Algorithm 1 into IOV form, and the direct subarray-datatype method
//!   (§VI-C);
//! * **mutexes** use the Latham et al. RMA queueing algorithm (§V-D),
//!   blocked waiters sleeping in a wildcard receive;
//! * **RMW** (fetch-and-add, swap) runs under a per-GMR mutex in two
//!   exclusive epochs — or, with [`Config::use_mpi3_rmw`], via the MPI-3
//!   `fetch_and_op` extension the paper advocates (§VIII-B);
//! * **direct local access** (§V-E) and **global-buffer staging** (§V-E1)
//!   keep local load/stores and global↔global copies epoch-correct;
//! * **node-aware shared memory** ([`shm`], the §VIII-B outlook):
//!   allocations are backed by per-node `MPI_Win_allocate_shared` slabs,
//!   and plans whose target is a node peer bypass the wire entirely as
//!   direct load/store/accumulate under `win_sync` coherence.

pub mod dla;
pub mod engine;
pub mod gmr;
pub mod iov;
pub mod mutex;
pub mod nxtval;
pub mod ops;
pub mod rmw;
pub mod shm;
pub mod strided;
pub mod transport;

pub use engine::{CoalesceMode, StageStats};
pub use nxtval::NxtvalCounter;
pub use transport::{ProgressSupport, Transport, TransportKind, TransportStats};

use armci::{
    AccKind, AccessMode, Armci, ArmciError, ArmciGroup, ArmciResult, GlobalAddr, IovDesc, NbHandle,
    RmwOp, StridedMethod,
};
use gmr::{Gmr, GmrTable};
use mpisim::{Comm, Proc};
use mutex::MutexSet;
use simnet::pool::{BufferPool, PoolBuf, RegistrationPolicy};
use simnet::PoolStats;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// How `ARMCI_Rmw` (and the NXTVAL counters built on it) maps onto the
/// backend: native atomics (§VIII-B `fetch_and_op`/`compare_and_swap`)
/// or the paper's §V-D Latham mutex + two-epoch protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtomicsMode {
    /// Native backend atomics when the backend prices 8-byte atomics
    /// ([`Transport::atomic_widths`]), the mutex protocol otherwise.
    /// Every built-in backend prices them, so this resolves to native.
    #[default]
    Auto,
    /// Force native atomics; a backend that cannot price them surfaces
    /// [`armci::ArmciError::AtomicUnsupported`] instead of falling back.
    Native,
    /// Force the mutex + two-epoch protocol (the MPI-2 paper path, kept
    /// as the ablation baseline and for backends without atomics).
    MutexFallback,
}

/// How passive-target progress is made at ranks that are busy computing:
/// the host CPU (stalling origins until the target re-enters MPI) or a
/// per-node asynchronous progress agent that drains pending one-sided
/// traffic on the target's behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// Host-CPU progress only (the measured MPI default): an origin's
    /// passive-target rounds stall while the target computes.
    #[default]
    None,
    /// Force per-node progress agents; a backend that cannot route
    /// through one surfaces [`armci::ArmciError::ProgressUnsupported`]
    /// instead of silently running agentless.
    Agent,
    /// Agents when the backend can route through one *and* the platform
    /// prices agent service ([`simnet::ProgressParams::available`]);
    /// host-CPU progress otherwise.
    Auto,
}

/// ARMCI-MPI configuration knobs (the environment variables of the real
/// implementation).
#[derive(Debug, Clone)]
pub struct Config {
    /// Method used by `*_strided` operations.
    pub strided: StridedMethod,
    /// Method used by `*_iov` operations (`Direct` acts as `IovDatatype`).
    pub iov: StridedMethod,
    /// Legacy switch predating [`Config::atomics`]: `true` forces MPI-3
    /// atomics for `ARMCI_Rmw` regardless of the mode selector.
    pub use_mpi3_rmw: bool,
    /// RMW discipline selector; see [`AtomicsMode`]. `Auto` resolves
    /// against what the wire backend can price.
    pub atomics: AtomicsMode,
    /// MPI-3 epochless passive mode (§VIII-B(2)): windows are opened with
    /// `lock_all` at allocation; operations are followed by `flush`
    /// instead of running in per-op exclusive epochs; conflicting accesses
    /// become undefined rather than erroneous; RMW uses `fetch_and_op`.
    pub epochless: bool,
    /// Nonblocking-operation coalescing discipline (the scheduler of
    /// [`engine`]): how queued same-target operations are issued at flush.
    pub coalesce: CoalesceMode,
    /// Node-aware shared-memory windows ([`shm`]): allocations are backed
    /// by per-node slabs (`MPI_Win_allocate_shared`) and intra-node plans
    /// bypass the RMA path as direct load/store under the shared window's
    /// `win_sync` discipline. `false` forces every transfer — including
    /// same-node — onto the wire path (the A/B baseline).
    pub shm: bool,
    /// Which wire backend carries inter-node traffic ([`transport`]):
    /// MPI passive-target RMA (the paper's implementation) or RAMC-style
    /// remote memory channels. [`Config::epochless`] only applies to the
    /// MPI backend; the channel backend has no epochs at all.
    pub transport: TransportKind,
    /// Asynchronous-progress discipline; see [`ProgressMode`]. `None`
    /// models host-CPU progress (origins stall behind computing targets),
    /// `Agent` routes passive-target rounds through a per-node agent.
    pub progress: ProgressMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            strided: StridedMethod::Direct,
            iov: StridedMethod::Auto,
            use_mpi3_rmw: false,
            atomics: AtomicsMode::Auto,
            epochless: false,
            coalesce: CoalesceMode::Auto,
            shm: true,
            transport: TransportKind::MpiRma,
            progress: ProgressMode::None,
        }
    }
}

/// Operation statistics (the real ARMCI-MPI's `ARMCII_Statistics`):
/// counters a user or test can read to see exactly how the runtime mapped
/// their calls onto MPI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Passive-target epochs opened (lock…unlock pairs).
    pub epochs: u64,
    /// Flush operations (epochless mode).
    pub flushes: u64,
    /// MPI put operations issued.
    pub puts: u64,
    /// MPI get operations issued.
    pub gets: u64,
    /// MPI accumulate operations issued.
    pub accs: u64,
    /// Bytes written by puts.
    pub bytes_put: u64,
    /// Bytes read by gets.
    pub bytes_got: u64,
    /// Bytes combined by accumulates.
    pub bytes_acc: u64,
    /// Read-modify-write operations.
    pub rmws: u64,
    /// RMWs satisfied by a native backend atomic (fetch-and-op / CAS).
    pub rmw_native: u64,
    /// RMWs that took the Latham mutex fallback protocol.
    pub rmw_mutex_fallback: u64,
    /// Failed compare-and-swap attempts (CAS-loop retries).
    pub cas_retries: u64,
    /// Mutex lock operations (user sets and the internal RMW mutexes).
    pub mutex_locks: u64,
    /// Bytes staged through temporary buffers (§V-E1, accumulate
    /// pre-scaling, datatype gathers).
    pub bytes_staged: u64,
}

/// Per-process ARMCI-MPI runtime handle.
///
/// Create one per simulated process inside `Runtime::run`:
///
/// ```
/// use armci::{Armci, ArmciExt};
/// use mpisim::Runtime;
///
/// Runtime::run(2, |p| {
///     let rt = armci_mpi::ArmciMpi::new(p);
///     let bases = rt.malloc(64).unwrap();
///     rt.barrier();
///     if rt.rank() == 0 {
///         rt.put_f64s(&[1.0; 8], bases[1]).unwrap();
///     }
///     rt.barrier();
///     if rt.rank() == 1 {
///         let v = rt.get_f64s(bases[1], 8).unwrap();
///         assert_eq!(v, vec![1.0; 8]);
///     }
///     rt.barrier();
///     rt.free(bases[rt.rank()]).unwrap();
/// });
/// ```
pub struct ArmciMpi {
    pub(crate) world: Comm,
    pub(crate) cfg: Config,
    /// Address-range → GMR translation table (§V-A).
    pub(crate) table: RefCell<GmrTable>,
    /// Live GMRs by window id.
    pub(crate) gmrs: RefCell<HashMap<u64, Gmr>>,
    /// This process's global-address allocator cursor.
    pub(crate) next_addr: Cell<usize>,
    /// User-created mutex sets by handle.
    pub(crate) user_mutexes: RefCell<HashMap<usize, MutexSet>>,
    pub(crate) next_mutex_handle: Cell<usize>,
    pub(crate) stats: RefCell<OpStats>,
    /// Registration-aware scratch pool: every staging, gather and bounce
    /// buffer leases from here. Misses pin fresh pages at first-touch
    /// cost (the Fig-5 penalty); hits run at prepinned rates.
    pub(crate) pool: BufferPool,
    /// Transfer-engine pipeline counters and stage timings.
    pub(crate) stage_stats: RefCell<StageStats>,
    /// Open nonblocking aggregate epochs and resolved handles.
    pub(crate) nb: RefCell<engine::NbState>,
    /// Committed-datatype cache counters of already-freed windows; live
    /// windows are folded in at snapshot time (the caches themselves live
    /// on the window handles).
    pub(crate) dtype_retired: Cell<(u64, u64)>,
    /// Baseline subtracted from the folded datatype counters, so
    /// [`ArmciMpi::reset_stage_stats`] can zero them without touching the
    /// monotonic per-window counts.
    pub(crate) dtype_base: Cell<(u64, u64)>,
    /// The wire backend every inter-node transfer goes through.
    pub(crate) tx: Box<dyn Transport>,
    /// The intra-node tier, bracketed the same way as the wire backend
    /// (only honouring `epochless` when a `lock_all` actually stands).
    pub(crate) shm_tx: transport::ShmTransport,
}

impl ArmciMpi {
    /// The active wire backend.
    pub(crate) fn tx(&self) -> &dyn Transport {
        &*self.tx
    }

    /// Opens an access context on `target` through `tx`: a passive-target
    /// epoch for per-op backends, nothing for epochless or channel
    /// backends. Epoch statistics follow the backend's style.
    pub(crate) fn epoch_begin_via(
        &self,
        tx: &dyn Transport,
        gmr: &gmr::Gmr,
        target: usize,
        mode: mpisim::LockMode,
    ) -> ArmciResult<()> {
        if tx.epoch_style() == transport::EpochStyle::PerOp {
            self.stat(|s| s.epochs += 1);
        }
        tx.epoch_begin(&gmr.win, target, mode)
            .map_err(ArmciError::from)
    }

    /// Closes the access context through `tx`: `unlock`, `flush` (counted
    /// as a flush), or nothing per the backend's style.
    pub(crate) fn epoch_end_via(
        &self,
        tx: &dyn Transport,
        gmr: &gmr::Gmr,
        target: usize,
    ) -> ArmciResult<()> {
        if tx.epoch_style() == transport::EpochStyle::Flush {
            self.stat(|s| s.flushes += 1);
        }
        tx.epoch_end(&gmr.win, target).map_err(ArmciError::from)
    }

    /// [`ArmciMpi::epoch_begin_via`] on the wire backend.
    pub(crate) fn epoch_begin(
        &self,
        gmr: &gmr::Gmr,
        target: usize,
        mode: mpisim::LockMode,
    ) -> ArmciResult<()> {
        self.epoch_begin_via(self.tx(), gmr, target, mode)
    }

    /// [`ArmciMpi::epoch_end_via`] on the wire backend.
    pub(crate) fn epoch_end(&self, gmr: &gmr::Gmr, target: usize) -> ArmciResult<()> {
        self.epoch_end_via(self.tx(), gmr, target)
    }

    /// Bootstraps ARMCI-MPI for this process with the default config.
    pub fn new(proc: &Proc) -> ArmciMpi {
        Self::with_config(proc, Config::default())
    }

    /// Bootstraps with an explicit configuration.
    pub fn with_config(proc: &Proc, cfg: Config) -> ArmciMpi {
        let world = proc.world();
        // MPI has no prepinned segment of its own: scratch pages are
        // registered on demand at first touch and then cached, which is
        // what lets the pool amortize the Fig-5 registration penalty.
        let pool = BufferPool::new(RegistrationPolicy::OnDemand, world.platform().reg.clone());
        let tx = transport::for_kind(cfg.transport, cfg.epochless);
        // The shm tier may only skip per-plan locks when a standing
        // `lock_all` covers its `win_sync` calls — i.e. epochless mode on
        // the MPI backend. The channel backend never opens one.
        let shm_tx =
            transport::ShmTransport::new(cfg.epochless && cfg.transport == TransportKind::MpiRma);
        ArmciMpi {
            tx,
            shm_tx,
            world,
            cfg,
            pool,
            table: RefCell::new(GmrTable::new()),
            gmrs: RefCell::new(HashMap::new()),
            // Base of this process's global address space; non-zero so
            // that 0 remains NULL.
            next_addr: Cell::new(0x1000),
            user_mutexes: RefCell::new(HashMap::new()),
            next_mutex_handle: Cell::new(1),
            stats: RefCell::new(OpStats::default()),
            stage_stats: RefCell::new(StageStats::default()),
            nb: RefCell::new(engine::NbState::default()),
            dtype_retired: Cell::new((0, 0)),
            dtype_base: Cell::new((0, 0)),
        }
    }

    /// A snapshot of this process's operation statistics.
    pub fn stats(&self) -> OpStats {
        *self.stats.borrow()
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = OpStats::default();
    }

    /// A snapshot of the transfer engine's per-stage counters and timings.
    /// Committed-datatype cache hits/misses are folded in from every live
    /// window plus the retired total of freed windows, so the counters
    /// stay monotonic across `free` and the [`StageStats::delta`] phase
    /// arithmetic never underflows.
    pub fn stage_stats(&self) -> StageStats {
        let mut g = *self.stage_stats.borrow();
        let (hits, misses) = self.dtype_counts();
        let (bh, bm) = self.dtype_base.get();
        g.dtype_hits = hits - bh;
        g.dtype_misses = misses - bm;
        g
    }

    /// Resets the per-stage counters. Datatype-cache counters are rebased
    /// rather than zeroed (the underlying per-window counts are
    /// monotonic); cached committed shapes are kept.
    pub fn reset_stage_stats(&self) {
        self.dtype_base.set(self.dtype_counts());
        *self.stage_stats.borrow_mut() = StageStats::default();
    }

    /// Total committed-datatype cache consultations: live windows plus
    /// freed ones.
    fn dtype_counts(&self) -> (u64, u64) {
        let (mut hits, mut misses) = self.dtype_retired.get();
        for gmr in self.gmrs.borrow().values() {
            let (h, m, _) = gmr.win.dtype_cache_stats();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    pub(crate) fn stat(&self, f: impl FnOnce(&mut OpStats)) {
        f(&mut self.stats.borrow_mut());
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Charges `dt` seconds of runtime-internal overhead (staging copies
    /// and similar) to this rank's virtual clock.
    pub(crate) fn charge(&self, dt: f64) {
        self.world.charge_time(dt);
    }

    /// Cost of a local memcpy of `bytes` (staging).
    pub(crate) fn copy_cost(&self, bytes: usize) -> f64 {
        bytes as f64 / self.world.platform().mpi.pack_rate
    }

    /// Leases `len` bytes of zeroed scratch from the registration-aware
    /// pool. A miss charges the first-touch pin cost to this rank's
    /// virtual clock; a hit reuses already-registered memory for free.
    /// Both outcomes are recorded in [`StageStats`].
    pub(crate) fn scratch(&self, len: usize) -> PoolBuf {
        let buf = self.pool.take(len);
        {
            let mut st = self.stage_stats.borrow_mut();
            if buf.was_hit() {
                st.pool_hits += 1;
            } else {
                st.pool_misses += 1;
                st.pool_reg_s += buf.reg_cost();
            }
        }
        if buf.reg_cost() > 0.0 {
            self.charge(buf.reg_cost());
        }
        buf
    }

    /// A snapshot of the scratch pool's counters (hits, misses, pinned
    /// high-water mark, accounted registration time).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The wire backend's name (`"mpi-rma"` or `"channel"`).
    pub fn transport_name(&self) -> &'static str {
        self.tx.name()
    }

    /// Resolves the configured [`ProgressMode`] against the wire backend
    /// and the platform's agent pricing. `Agent` on a backend that cannot
    /// route through an agent is an error, not a silent agentless run.
    pub(crate) fn progress_model(&self) -> ArmciResult<mpisim::ProgressModel> {
        use transport::ProgressSupport;
        match self.cfg.progress {
            ProgressMode::None => Ok(mpisim::ProgressModel::Host),
            ProgressMode::Agent => match self.tx.progress_support() {
                ProgressSupport::Agent => Ok(mpisim::ProgressModel::Agent),
                // Hardware progress needs no agent: remote completion is
                // independent of the target CPU already.
                ProgressSupport::Hardware => Ok(mpisim::ProgressModel::Off),
                ProgressSupport::Unsupported => Err(ArmciError::ProgressUnsupported {
                    backend: self.tx.name(),
                }),
            },
            ProgressMode::Auto => match self.tx.progress_support() {
                ProgressSupport::Agent if self.world.platform().progress.available => {
                    Ok(mpisim::ProgressModel::Agent)
                }
                ProgressSupport::Hardware => Ok(mpisim::ProgressModel::Off),
                _ => Ok(mpisim::ProgressModel::Host),
            },
        }
    }

    /// The resolved progress mode as a provenance string for benchmarks
    /// and reports (`"none"` = host-CPU progress, `"agent"` = per-node
    /// agents).
    pub fn progress_mode_name(&self) -> &'static str {
        match self.progress_model() {
            Ok(mpisim::ProgressModel::Agent) => "agent",
            Ok(_) => "none",
            Err(_) => "unsupported",
        }
    }

    /// The wire backend's offload counters (zero on backends without the
    /// offload distinction, i.e. MPI RMA).
    pub fn transport_stats(&self) -> TransportStats {
        self.tx.stats()
    }

    /// Resets the pool counters (cached registrations are kept — only
    /// the statistics are zeroed).
    pub fn reset_pool_stats(&self) {
        self.pool.reset_stats();
    }
}

impl Armci for ArmciMpi {
    fn rank(&self) -> usize {
        self.world.rank()
    }

    fn nprocs(&self) -> usize {
        self.world.size()
    }

    fn vtime(&self) -> f64 {
        self.vnow()
    }

    fn world_group(&self) -> ArmciGroup {
        ArmciGroup::from_comm(self.world.clone())
    }

    fn malloc_group(&self, bytes: usize, group: &ArmciGroup) -> ArmciResult<Vec<GlobalAddr>> {
        self.malloc_impl(bytes, group)
    }

    fn free_group(&self, addr: GlobalAddr, group: &ArmciGroup) -> ArmciResult<()> {
        // Nonblocking operations may still reference the GMR.
        self.nb_quiesce()?;
        self.free_impl(addr, group)
    }

    fn set_access_mode(
        &self,
        addr: GlobalAddr,
        group: &ArmciGroup,
        mode: AccessMode,
    ) -> ArmciResult<()> {
        // The mode switch must not reclassify in-flight operations.
        self.nb_quiesce()?;
        self.set_access_mode_impl(addr, group, mode)
    }

    fn get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<()> {
        self.get_impl(src, dst)
    }

    fn put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        self.put_impl(src, dst)
    }

    fn acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        self.acc_impl(kind, src, dst)
    }

    fn copy(&self, src: GlobalAddr, dst: GlobalAddr, bytes: usize) -> ArmciResult<()> {
        self.copy_impl(src, dst, bytes)
    }

    fn get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        self.get_strided_impl(src, src_strides, dst, dst_strides, count)
    }

    fn put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        self.put_strided_impl(src, src_strides, dst, dst_strides, count)
    }

    fn acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        self.acc_strided_impl(kind, src, src_strides, dst, dst_strides, count)
    }

    fn get_iov(&self, desc: &IovDesc, local: &mut [u8]) -> ArmciResult<()> {
        self.get_iov_impl(desc, local, self.cfg.iov)
    }

    fn put_iov(&self, desc: &IovDesc, local: &[u8]) -> ArmciResult<()> {
        self.put_iov_impl(desc, local, self.cfg.iov)
    }

    fn acc_iov(&self, kind: AccKind, desc: &IovDesc, local: &[u8]) -> ArmciResult<()> {
        self.acc_iov_impl(kind, desc, local, self.cfg.iov)
    }

    fn nb_get(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<NbHandle> {
        self.nb_get_impl(src, dst)
    }

    fn nb_put(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        self.nb_put_impl(src, dst)
    }

    fn nb_acc(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        self.nb_acc_impl(kind, src, dst)
    }

    fn nb_get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.nb_get_strided_impl(src, src_strides, dst, dst_strides, count)
    }

    fn nb_put_strided(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.nb_put_strided_impl(src, src_strides, dst, dst_strides, count)
    }

    fn nb_acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        self.nb_acc_strided_impl(kind, src, src_strides, dst, dst_strides, count)
    }

    fn wait(&self, handle: NbHandle) -> ArmciResult<()> {
        self.nb_wait(handle)
    }

    fn fence(&self, _proc: usize) -> ArmciResult<()> {
        // §V-F: blocking operations complete remotely before each epoch
        // closes, so fence only has to retire nonblocking aggregates.
        self.nb_quiesce()
    }

    fn fence_all(&self) -> ArmciResult<()> {
        self.nb_quiesce()
    }

    fn barrier(&self) {
        // fence-all + world barrier
        self.nb_quiesce()
            .expect("completing nonblocking operations at barrier");
        self.world.barrier();
    }

    fn rmw(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        self.rmw_impl(op, target)
    }

    fn create_mutexes(&self, count: usize) -> ArmciResult<usize> {
        self.create_mutexes_impl(count)
    }

    fn lock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()> {
        self.lock_mutex_impl(handle, mutex, proc)
    }

    fn unlock_mutex(&self, handle: usize, mutex: usize, proc: usize) -> ArmciResult<()> {
        self.unlock_mutex_impl(handle, mutex, proc)
    }

    fn destroy_mutexes(&self, handle: usize) -> ArmciResult<()> {
        self.destroy_mutexes_impl(handle)
    }

    fn access_mut(
        &self,
        addr: GlobalAddr,
        len: usize,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> ArmciResult<()> {
        self.access_mut_impl(addr, len, f)
    }

    fn access(&self, addr: GlobalAddr, len: usize, f: &mut dyn FnMut(&[u8])) -> ArmciResult<()> {
        self.access_impl(addr, len, f)
    }
}

/// Shared error helper: the address was not found in the translation
/// table.
pub(crate) fn bad_address(addr: GlobalAddr) -> ArmciError {
    ArmciError::BadAddress {
        rank: addr.rank,
        addr: addr.addr,
    }
}
