//! Contiguous one-sided operations (§V-C, §V-E1, §V-F).
//!
//! Every operation is planned as a single-op [`crate::engine`] transfer
//! plan and issued inside its own passive-target epoch. The epoch's lock
//! mode is **exclusive** by default — an ARMCI process has no knowledge of
//! operations issued by its peers, so exclusivity is the only way to
//! guarantee MPI-2's no-conflict rule (§V-C). When the target GMR carries
//! an access-mode hint (§VIII-A), compatible operations downgrade to
//! **shared** locks: concurrent readers during read-only phases, concurrent
//! accumulators during accumulate-only phases.

use crate::engine::ExecBuf;
use crate::ArmciMpi;
use armci::{AccKind, AccessMode, ArmciError, ArmciResult, GlobalAddr, NbHandle};
use mpisim::LockMode;

/// Operation class for lock-mode selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpClass {
    Get,
    Put,
    Acc,
}

impl OpClass {
    fn name(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Put => "put",
            OpClass::Acc => "accumulate",
        }
    }
}

impl ArmciMpi {
    /// Lock mode implied by the GMR's access-mode hint for `class`
    /// (§VIII-A). The hint is a *promise* about application behaviour
    /// during the phase — shared locks for compatible operations are
    /// sound only because nothing else touches the region — so an
    /// operation that contradicts the hint (a put into a read-only
    /// region, a get from an accumulate-only one) is erroneous and is
    /// rejected outright rather than silently escalated to an exclusive
    /// lock that could still corrupt concurrent shared-lock traffic.
    pub(crate) fn lock_mode_for(
        &self,
        gmr: u64,
        mode: AccessMode,
        class: OpClass,
    ) -> ArmciResult<LockMode> {
        match (mode, class) {
            (AccessMode::Standard, _) => Ok(LockMode::Exclusive),
            (AccessMode::ReadOnly, OpClass::Get) => Ok(LockMode::Shared),
            (AccessMode::AccumulateOnly, OpClass::Acc) => Ok(LockMode::Shared),
            (AccessMode::ReadOnly, c) => Err(ArmciError::AccessModeViolation {
                gmr,
                mode: "read-only",
                op: c.name(),
            }),
            (AccessMode::AccumulateOnly, c) => Err(ArmciError::AccessModeViolation {
                gmr,
                mode: "accumulate-only",
                op: c.name(),
            }),
        }
    }

    /// Records a staging-buffer fill/drain for `gmr`'s window. The auditor
    /// checks these happen while the home window is unlocked (§V-E1).
    pub(crate) fn stage_touch(&self, gmr: u64, bytes: usize) {
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::StageTouch {
                    gmr,
                    bytes: bytes as u64,
                },
                self.vnow(),
            );
        }
    }

    pub(crate) fn get_impl(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<()> {
        if dst.is_empty() {
            return Ok(());
        }
        let plan = self.plan_contiguous(OpClass::Get, src, dst.len())?;
        self.run_plans(
            std::slice::from_ref(&plan),
            &ExecBuf::Get(dst.as_mut_ptr(), dst.len()),
        )
    }

    pub(crate) fn put_impl(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        let plan = self.plan_contiguous(OpClass::Put, dst, src.len())?;
        self.run_plans(
            std::slice::from_ref(&plan),
            &ExecBuf::Put(src.as_ptr(), src.len()),
        )
    }

    pub(crate) fn acc_impl(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        kind.check_len(src.len())?;
        let plan = self.plan_contiguous(OpClass::Acc, dst, src.len())?;
        // Pre-scale into pooled staging so the wire operation is MPI's
        // unscaled SUM accumulate.
        let mut staged = self.scratch(src.len());
        kind.prescale_into(src, &mut staged)?;
        if !kind.is_unit_scale() {
            self.charge(self.copy_cost(src.len()));
        }
        self.stage_touch(plan.gmr, src.len());
        self.run_plans(
            std::slice::from_ref(&plan),
            &ExecBuf::Acc(&staged, kind.mpi_elem()),
        )
    }

    /// Nonblocking contiguous get (§VIII-B(3)): planned like `get_impl`
    /// but executed through the request-based path; the returned handle
    /// completes at `wait` or the next synchronisation point. The
    /// simulator moves bytes at issue time, so `dst` is filled on return —
    /// only the virtual-time completion is deferred.
    pub(crate) fn nb_get_impl(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<NbHandle> {
        if dst.is_empty() {
            return Ok(NbHandle::eager());
        }
        let plan = self.plan_contiguous(OpClass::Get, src, dst.len())?;
        self.nb_run_plans(vec![plan], &ExecBuf::Get(dst.as_mut_ptr(), dst.len()))
    }

    /// Nonblocking contiguous put.
    pub(crate) fn nb_put_impl(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<NbHandle> {
        if src.is_empty() {
            return Ok(NbHandle::eager());
        }
        let plan = self.plan_contiguous(OpClass::Put, dst, src.len())?;
        self.nb_run_plans(vec![plan], &ExecBuf::Put(src.as_ptr(), src.len()))
    }

    /// Nonblocking contiguous accumulate.
    pub(crate) fn nb_acc_impl(
        &self,
        kind: AccKind,
        src: &[u8],
        dst: GlobalAddr,
    ) -> ArmciResult<NbHandle> {
        if src.is_empty() {
            return Ok(NbHandle::eager());
        }
        kind.check_len(src.len())?;
        let plan = self.plan_contiguous(OpClass::Acc, dst, src.len())?;
        let mut staged = self.scratch(src.len());
        kind.prescale_into(src, &mut staged)?;
        if !kind.is_unit_scale() {
            self.charge(self.copy_cost(src.len()));
        }
        self.stage_touch(plan.gmr, src.len());
        self.nb_run_plans(vec![plan], &ExecBuf::Acc(&staged, kind.mpi_elem()))
    }

    /// Global↔global contiguous copy (§V-E1). The source is staged into a
    /// temporary local buffer under its own epoch — released *before* the
    /// destination is locked — which is the only deadlock-free ordering
    /// the paper identifies.
    pub(crate) fn copy_impl(
        &self,
        src: GlobalAddr,
        dst: GlobalAddr,
        bytes: usize,
    ) -> ArmciResult<()> {
        if bytes == 0 {
            return Ok(());
        }
        // Pooled bounce buffer: the global→global copy path is the
        // classic beneficiary of prepinned staging (§V-E1).
        let mut tmp = self.scratch(bytes);
        if src.rank == self.rank_of_self() {
            // Local global buffer: exclusive-epoch direct access, copy
            // out, release (no window is locked while we then lock dst's).
            self.access_impl(src, bytes, &mut |b| tmp.copy_from_slice(b))?;
        } else {
            self.get_impl(src, &mut tmp)?;
        }
        self.charge(self.copy_cost(bytes));
        if obs::enabled() {
            // The bounce buffer is complete and the source epoch released;
            // the destination window must not be locked yet (§V-E1).
            if let Ok(tr) = self.translate(dst, bytes) {
                self.stage_touch(tr.gmr, bytes);
            }
        }
        self.put_impl(&tmp, dst)
    }

    pub(crate) fn rank_of_self(&self) -> usize {
        self.world.rank()
    }
}
