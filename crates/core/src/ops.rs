//! Contiguous one-sided operations (§V-C, §V-E1, §V-F).
//!
//! Every operation is issued inside its own passive-target epoch. The
//! epoch's lock mode is **exclusive** by default — an ARMCI process has no
//! knowledge of operations issued by its peers, so exclusivity is the only
//! way to guarantee MPI-2's no-conflict rule (§V-C). When the target GMR
//! carries an access-mode hint (§VIII-A), compatible operations downgrade
//! to **shared** locks: concurrent readers during read-only phases,
//! concurrent accumulators during accumulate-only phases.

use crate::ArmciMpi;
use armci::{AccKind, AccessMode, ArmciError, ArmciResult, GlobalAddr};
use mpisim::{AccOp, Datatype, LockMode};

/// Operation class for lock-mode selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpClass {
    Get,
    Put,
    Acc,
}

impl ArmciMpi {
    /// Lock mode implied by the GMR's access-mode hint for `class`
    /// (§VIII-A). Operations that contradict the hint fall back to
    /// exclusive — the hint promises application behaviour, it does not
    /// license corruption.
    pub(crate) fn lock_mode_for(&self, mode: AccessMode, class: OpClass) -> LockMode {
        match (mode, class) {
            (AccessMode::ReadOnly, OpClass::Get) => LockMode::Shared,
            (AccessMode::AccumulateOnly, OpClass::Acc) => LockMode::Shared,
            _ => LockMode::Exclusive,
        }
    }

    pub(crate) fn get_impl(&self, src: GlobalAddr, dst: &mut [u8]) -> ArmciResult<()> {
        if dst.is_empty() {
            return Ok(());
        }
        let tr = self.translate(src, dst.len())?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&tr.gmr).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), OpClass::Get);
        self.epoch_begin(gmr, tr.group_rank, mode)?;
        let res = gmr.win.get_bytes(dst, tr.group_rank, tr.disp);
        self.epoch_end(gmr, tr.group_rank)?;
        self.stat(|s| {
            s.gets += 1;
            s.bytes_got += dst.len() as u64;
        });
        res.map_err(ArmciError::from)
    }

    pub(crate) fn put_impl(&self, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        let tr = self.translate(dst, src.len())?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&tr.gmr).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), OpClass::Put);
        self.epoch_begin(gmr, tr.group_rank, mode)?;
        let res = gmr.win.put_bytes(src, tr.group_rank, tr.disp);
        self.epoch_end(gmr, tr.group_rank)?;
        self.stat(|s| {
            s.puts += 1;
            s.bytes_put += src.len() as u64;
        });
        res.map_err(ArmciError::from)
    }

    pub(crate) fn acc_impl(&self, kind: AccKind, src: &[u8], dst: GlobalAddr) -> ArmciResult<()> {
        if src.is_empty() {
            return Ok(());
        }
        kind.check_len(src.len())?;
        let tr = self.translate(dst, src.len())?;
        // Pre-scale into a staged buffer so the wire operation is MPI's
        // unscaled SUM accumulate.
        let staged = kind.prescale(src)?;
        if !kind.is_unit_scale() {
            self.charge(self.copy_cost(src.len()));
        }
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&tr.gmr).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), OpClass::Acc);
        self.epoch_begin(gmr, tr.group_rank, mode)?;
        let dt = Datatype::contiguous(staged.len());
        let res = gmr.win.accumulate(
            &staged,
            &dt.clone(),
            tr.group_rank,
            tr.disp,
            &dt,
            kind.mpi_elem(),
            AccOp::Sum,
        );
        self.epoch_end(gmr, tr.group_rank)?;
        self.stat(|s| {
            s.accs += 1;
            s.bytes_acc += staged.len() as u64;
        });
        res.map_err(ArmciError::from)
    }

    /// Global↔global contiguous copy (§V-E1). The source is staged into a
    /// temporary local buffer under its own epoch — released *before* the
    /// destination is locked — which is the only deadlock-free ordering
    /// the paper identifies.
    pub(crate) fn copy_impl(
        &self,
        src: GlobalAddr,
        dst: GlobalAddr,
        bytes: usize,
    ) -> ArmciResult<()> {
        if bytes == 0 {
            return Ok(());
        }
        let mut tmp = vec![0u8; bytes];
        if src.rank == self.rank_of_self() {
            // Local global buffer: exclusive-epoch direct access, copy
            // out, release (no window is locked while we then lock dst's).
            self.access_impl(src, bytes, &mut |b| tmp.copy_from_slice(b))?;
        } else {
            self.get_impl(src, &mut tmp)?;
        }
        self.charge(self.copy_cost(bytes));
        self.put_impl(&tmp, dst)
    }

    pub(crate) fn rank_of_self(&self) -> usize {
        self.world.rank()
    }
}
