//! Generalized I/O vector operations (§VI-A) and the auto method's
//! conflict scan (§VI-B).
//!
//! Four methods, exactly as in the paper:
//!
//! * **conservative** — one operation per segment, each in its own epoch;
//!   tolerates segments that overlap or span multiple GMRs;
//! * **batched** — all segments must fall in one GMR and be disjoint; up
//!   to `B` operations share an epoch (`B = 0` means unlimited, the
//!   default);
//! * **datatype** ("direct") — builds MPI indexed datatypes for the local
//!   and remote layouts and issues a single operation, letting the MPI
//!   layer pick pack/unpack or scatter-gather;
//! * **auto** — scans the descriptor with the AVL conflict tree; clean
//!   descriptors take the datatype path, conflicted ones fall back to
//!   conservative (the error-recovery motivation of §VI-B: detecting the
//!   error *after* MPI has started the transfer would be too late).

use crate::gmr::Translation;
use crate::ops::OpClass;
use crate::ArmciMpi;
use armci::{AccKind, ArmciError, ArmciResult, GlobalAddr, IovDesc, StridedMethod};
use mpisim::{AccOp, Datatype};

/// Which data-movement verb an IOV operation performs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IovVerb<'a> {
    Get,
    Put,
    Acc(AccKind, &'a [u8]),
}

impl ArmciMpi {
    fn check_local(&self, desc: &IovDesc, local_len: usize) -> ArmciResult<()> {
        desc.validate()?;
        if desc.local_end() > local_len {
            return Err(ArmciError::BadDescriptor(format!(
                "IOV local extent {} exceeds buffer {}",
                desc.local_end(),
                local_len
            )));
        }
        Ok(())
    }

    /// Resolves every segment, requiring a single common GMR. Errors if
    /// segments span allocations (the batched/datatype prerequisite).
    fn resolve_single_gmr(&self, desc: &IovDesc) -> ArmciResult<(u64, usize, Vec<usize>)> {
        let mut gmr_id = None;
        let mut group_rank = 0usize;
        let mut disps = Vec::with_capacity(desc.len());
        for &addr in &desc.remote_addrs {
            let tr = self.translate(GlobalAddr::new(desc.rank, addr), desc.bytes)?;
            match gmr_id {
                None => {
                    gmr_id = Some(tr.gmr);
                    group_rank = tr.group_rank;
                }
                Some(id) if id != tr.gmr => {
                    return Err(ArmciError::BadDescriptor(
                        "IOV segments span multiple GMRs".into(),
                    ))
                }
                _ => {}
            }
            disps.push(tr.disp);
        }
        let id = gmr_id.ok_or_else(|| ArmciError::BadDescriptor("empty IOV".into()))?;
        Ok((id, group_rank, disps))
    }

    fn class_of(verb: &IovVerb) -> OpClass {
        match verb {
            IovVerb::Get => OpClass::Get,
            IovVerb::Put => OpClass::Put,
            IovVerb::Acc(..) => OpClass::Acc,
        }
    }

    /// Conservative method: one epoch per segment; segments may live in
    /// different GMRs and may overlap.
    fn iov_conservative(
        &self,
        desc: &IovDesc,
        local: *mut u8,
        local_len: usize,
        verb: IovVerb,
    ) -> ArmciResult<()> {
        let _ = local_len;
        for (i, (&loff, &raddr)) in desc
            .local_offsets
            .iter()
            .zip(&desc.remote_addrs)
            .enumerate()
        {
            let tr = self.translate(GlobalAddr::new(desc.rank, raddr), desc.bytes)?;
            let gmrs = self.gmrs.borrow();
            let gmr = gmrs.get(&tr.gmr).expect("translated GMR must exist");
            let mode = self.lock_mode_for(gmr.mode.get(), Self::class_of(&verb));
            self.epoch_begin(gmr, tr.group_rank, mode)?;
            let res = self.issue_segment(gmr, &tr, loff, local, desc.bytes, &verb, i);
            self.epoch_end(gmr, tr.group_rank)?;
            res?;
        }
        Ok(())
    }

    /// Batched method: chunks of `batch` operations per epoch (0 =
    /// unlimited). Single GMR, disjoint segments.
    #[allow(clippy::needless_range_loop)] // j indexes two parallel arrays
    fn iov_batched(
        &self,
        desc: &IovDesc,
        local: *mut u8,
        verb: IovVerb,
        batch: usize,
    ) -> ArmciResult<()> {
        let (gmr_id, group_rank, disps) = self.resolve_single_gmr(desc)?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&gmr_id).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), Self::class_of(&verb));
        let chunk = if batch == 0 { desc.len() } else { batch };
        let mut i = 0usize;
        while i < desc.len() {
            let end = (i + chunk).min(desc.len());
            self.epoch_begin(gmr, group_rank, mode)?;
            let mut res = Ok(());
            for j in i..end {
                let tr = Translation {
                    gmr: gmr_id,
                    group_rank,
                    disp: disps[j],
                };
                res = self.issue_segment(
                    gmr,
                    &tr,
                    desc.local_offsets[j],
                    local,
                    desc.bytes,
                    &verb,
                    j,
                );
                if res.is_err() {
                    break;
                }
            }
            self.epoch_end(gmr, group_rank)?;
            res?;
            i = end;
        }
        Ok(())
    }

    /// Datatype method: two indexed datatypes, one operation, one epoch.
    fn iov_datatype(&self, desc: &IovDesc, local: *mut u8, verb: IovVerb) -> ArmciResult<()> {
        let (gmr_id, group_rank, disps) = self.resolve_single_gmr(desc)?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&gmr_id).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), Self::class_of(&verb));

        let remote_dt = Datatype::Indexed {
            blocks: disps.iter().map(|&d| (d, desc.bytes)).collect(),
        };
        let local_dt = Datatype::Indexed {
            blocks: desc
                .local_offsets
                .iter()
                .map(|&o| (o, desc.bytes))
                .collect(),
        };
        let local_extent = desc.local_end();

        self.epoch_begin(gmr, group_rank, mode)?;
        let res: ArmciResult<()> = (|| {
            match verb {
                IovVerb::Get => {
                    // Safety: `local` covers `local_len` >= local extent
                    // bytes and no other alias exists during the call.
                    let buf = unsafe { std::slice::from_raw_parts_mut(local, local_extent) };
                    gmr.win.get(buf, &local_dt, group_rank, 0, &remote_dt)?;
                    self.stat(|s| {
                        s.gets += 1;
                        s.bytes_got += desc.total_bytes() as u64;
                    });
                }
                IovVerb::Put => {
                    let buf =
                        unsafe { std::slice::from_raw_parts(local as *const u8, local_extent) };
                    gmr.win.put(buf, &local_dt, group_rank, 0, &remote_dt)?;
                    self.stat(|s| {
                        s.puts += 1;
                        s.bytes_put += desc.total_bytes() as u64;
                    });
                }
                IovVerb::Acc(kind, staged) => {
                    // staged already pre-scaled and gathered contiguous;
                    // pair it with the indexed remote type.
                    let src_dt = Datatype::contiguous(staged.len());
                    gmr.win.accumulate(
                        staged,
                        &src_dt,
                        group_rank,
                        0,
                        &remote_dt,
                        kind.mpi_elem(),
                        AccOp::Sum,
                    )?;
                    self.stat(|s| {
                        s.accs += 1;
                        s.bytes_acc += staged.len() as u64;
                    });
                }
            }
            Ok(())
        })();
        self.epoch_end(gmr, group_rank)?;
        res
    }

    /// Auto method (§VI-B): conflict-tree scan, datatype when clean,
    /// conservative otherwise.
    fn iov_auto(
        &self,
        desc: &IovDesc,
        local: *mut u8,
        local_len: usize,
        verb: IovVerb,
    ) -> ArmciResult<()> {
        // The scan must also verify the single-GMR condition; resolve and
        // scan in one pass.
        let single_gmr = self.resolve_single_gmr(desc).is_ok();
        let clean = single_gmr && ctree::scan_segments(&desc.remote_segments()).is_ok();
        // Charge the O(N log N) scan (~a few ns per tree visit on a
        // cache-resident AVL tree).
        let n = desc.len().max(1) as f64;
        self.charge(4e-9 * n * n.log2().max(1.0));
        if clean {
            self.iov_datatype(desc, local, verb)
        } else {
            self.iov_conservative(desc, local, local_len, verb)
        }
    }

    /// Issues one segment inside an open epoch.
    #[allow(clippy::too_many_arguments)]
    fn issue_segment(
        &self,
        gmr: &crate::gmr::Gmr,
        tr: &Translation,
        loff: usize,
        local: *mut u8,
        bytes: usize,
        verb: &IovVerb,
        _index: usize,
    ) -> ArmciResult<()> {
        match verb {
            IovVerb::Get => {
                let buf = unsafe { std::slice::from_raw_parts_mut(local.add(loff), bytes) };
                gmr.win.get_bytes(buf, tr.group_rank, tr.disp)?;
                self.stat(|s| {
                    s.gets += 1;
                    s.bytes_got += bytes as u64;
                });
            }
            IovVerb::Put => {
                let buf =
                    unsafe { std::slice::from_raw_parts(local.add(loff) as *const u8, bytes) };
                gmr.win.put_bytes(buf, tr.group_rank, tr.disp)?;
                self.stat(|s| {
                    s.puts += 1;
                    s.bytes_put += bytes as u64;
                });
            }
            IovVerb::Acc(kind, staged) => {
                // staged is contiguous in segment order
                let seg = &staged[_index * bytes..(_index + 1) * bytes];
                let dt = Datatype::contiguous(bytes);
                gmr.win.accumulate(
                    seg,
                    &dt.clone(),
                    tr.group_rank,
                    tr.disp,
                    &dt,
                    kind.mpi_elem(),
                    AccOp::Sum,
                )?;
                self.stat(|s| {
                    s.accs += 1;
                    s.bytes_acc += bytes as u64;
                });
            }
        }
        Ok(())
    }

    fn dispatch(
        &self,
        desc: &IovDesc,
        local: *mut u8,
        local_len: usize,
        verb: IovVerb,
        method: StridedMethod,
    ) -> ArmciResult<()> {
        if desc.is_empty() {
            return Ok(());
        }
        match method {
            StridedMethod::IovConservative => self.iov_conservative(desc, local, local_len, verb),
            StridedMethod::IovBatched { batch } => self.iov_batched(desc, local, verb, batch),
            StridedMethod::IovDatatype | StridedMethod::Direct => {
                self.iov_datatype(desc, local, verb)
            }
            StridedMethod::Auto => self.iov_auto(desc, local, local_len, verb),
        }
    }

    pub(crate) fn get_iov_impl(
        &self,
        desc: &IovDesc,
        local: &mut [u8],
        method: StridedMethod,
    ) -> ArmciResult<()> {
        self.check_local(desc, local.len())?;
        let len = local.len();
        self.dispatch(desc, local.as_mut_ptr(), len, IovVerb::Get, method)
    }

    pub(crate) fn put_iov_impl(
        &self,
        desc: &IovDesc,
        local: &[u8],
        method: StridedMethod,
    ) -> ArmciResult<()> {
        self.check_local(desc, local.len())?;
        self.dispatch(
            desc,
            local.as_ptr() as *mut u8,
            local.len(),
            IovVerb::Put,
            method,
        )
    }

    pub(crate) fn acc_iov_impl(
        &self,
        kind: AccKind,
        desc: &IovDesc,
        local: &[u8],
        method: StridedMethod,
    ) -> ArmciResult<()> {
        self.check_local(desc, local.len())?;
        kind.check_len(desc.bytes)?;
        if desc.is_empty() {
            return Ok(());
        }
        // Gather + pre-scale the local segments once (contiguous, in
        // segment order); all methods then source from the staged buffer.
        let mut gathered = Vec::with_capacity(desc.total_bytes());
        for &off in &desc.local_offsets {
            gathered.extend_from_slice(&local[off..off + desc.bytes]);
        }
        let staged = kind.prescale(&gathered)?;
        self.charge(self.copy_cost(staged.len()));
        self.dispatch(
            desc,
            local.as_ptr() as *mut u8,
            local.len(),
            IovVerb::Acc(kind, &staged),
            method,
        )
    }
}
