//! Generalized I/O vector operations (§VI-A) and the auto method's
//! conflict scan (§VI-B).
//!
//! Four methods, exactly as in the paper — all expressed as transfer-plan
//! construction in [`crate::engine`]:
//!
//! * **conservative** — one operation per segment, each in its own epoch;
//!   tolerates segments that overlap or span multiple GMRs;
//! * **batched** — all segments must fall in one GMR and be disjoint; up
//!   to `B` operations share an epoch (`B = 0` means unlimited, the
//!   default);
//! * **datatype** ("direct") — builds MPI indexed datatypes for the local
//!   and remote layouts and issues a single operation, letting the MPI
//!   layer pick pack/unpack or scatter-gather;
//! * **auto** — scans the descriptor with the AVL conflict tree; clean
//!   descriptors take the datatype path, conflicted ones fall back to
//!   conservative (the error-recovery motivation of §VI-B: detecting the
//!   error *after* MPI has started the transfer would be too late).
//!
//! This module validates descriptors, stages accumulate sources, and hands
//! the engine a method; planning and epoch management live in the engine.
//! Nonblocking IOV calls additionally route through the engine's
//! coalescing scheduler (DESIGN §7): queued same-target descriptors can
//! merge with neighbouring operations into coarsened epochs, and clean
//! datatype-path descriptors reuse committed datatypes via the
//! window-level shape cache.

use crate::engine::ExecBuf;
use crate::ops::OpClass;
use crate::ArmciMpi;
use armci::{AccKind, ArmciError, ArmciResult, IovDesc, StridedMethod};
use simnet::PoolBuf;

impl ArmciMpi {
    pub(crate) fn check_local(&self, desc: &IovDesc, local_len: usize) -> ArmciResult<()> {
        desc.validate()?;
        if desc.local_end() > local_len {
            return Err(ArmciError::BadDescriptor(format!(
                "IOV local extent {} exceeds buffer {}",
                desc.local_end(),
                local_len
            )));
        }
        Ok(())
    }

    pub(crate) fn get_iov_impl(
        &self,
        desc: &IovDesc,
        local: &mut [u8],
        method: StridedMethod,
    ) -> ArmciResult<()> {
        self.check_local(desc, local.len())?;
        if desc.is_empty() {
            return Ok(());
        }
        let plans = self.plan_iov(desc, OpClass::Get, false, method)?;
        self.run_plans(&plans, &ExecBuf::Get(local.as_mut_ptr(), local.len()))
    }

    pub(crate) fn put_iov_impl(
        &self,
        desc: &IovDesc,
        local: &[u8],
        method: StridedMethod,
    ) -> ArmciResult<()> {
        self.check_local(desc, local.len())?;
        if desc.is_empty() {
            return Ok(());
        }
        let plans = self.plan_iov(desc, OpClass::Put, false, method)?;
        self.run_plans(&plans, &ExecBuf::Put(local.as_ptr(), local.len()))
    }

    pub(crate) fn acc_iov_impl(
        &self,
        kind: AccKind,
        desc: &IovDesc,
        local: &[u8],
        method: StridedMethod,
    ) -> ArmciResult<()> {
        self.check_local(desc, local.len())?;
        kind.check_len(desc.bytes)?;
        if desc.is_empty() {
            return Ok(());
        }
        let staged = self.stage_iov_acc(kind, desc, local)?;
        let plans = self.plan_iov(desc, OpClass::Acc, true, method)?;
        if let Some(p) = plans.first() {
            self.stage_touch(p.gmr, staged.len());
        }
        self.run_plans(&plans, &ExecBuf::Acc(&staged, kind.mpi_elem()))
    }

    /// Gathers + pre-scales the local segments once (contiguous, in
    /// segment order) into pooled scratch; all methods then source from
    /// the staged buffer.
    pub(crate) fn stage_iov_acc(
        &self,
        kind: AccKind,
        desc: &IovDesc,
        local: &[u8],
    ) -> ArmciResult<PoolBuf> {
        let mut staged = self.scratch(desc.total_bytes());
        let mut w = 0usize;
        for &off in &desc.local_offsets {
            staged[w..w + desc.bytes].copy_from_slice(&local[off..off + desc.bytes]);
            w += desc.bytes;
        }
        kind.scale_in_place(&mut staged)?;
        self.charge(self.copy_cost(staged.len()));
        Ok(staged)
    }
}
