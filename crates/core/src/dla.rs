//! Direct local access (§V-E): the `ARMCI_Access_begin/end` extension.
//!
//! Direct load/store access to memory exposed in an MPI window conflicts
//! with every remote access to the same window region, so ARMCI-MPI only
//! grants it inside an epoch on the caller's own rank: **exclusive** for
//! mutation, shared for read-only access. The Rust shape is a closure
//! (`begin`/`end` become scope entry/exit), which makes it impossible to
//! leak the pointer past the epoch.

use crate::ArmciMpi;
use armci::{ArmciError, ArmciResult, GlobalAddr};
use mpisim::LockMode;

impl ArmciMpi {
    /// Mutable direct access to `len` bytes of this process's own slice
    /// starting at `addr`. Implies an exclusive epoch on self.
    pub(crate) fn access_mut_impl(
        &self,
        addr: GlobalAddr,
        len: usize,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> ArmciResult<()> {
        if addr.rank != self.world.rank() {
            // A node peer's slice is reachable through the shared slab
            // (crate::shm); any other remote rank stays illegal.
            return self.access_peer_impl(addr, len, true, f);
        }
        // Serialise behind outstanding nonblocking operations: direct
        // load/store while a deferred transfer targets this window would
        // be a conflicting access.
        self.nb_quiesce()?;
        let tr = self.translate(addr, len)?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        // The backend decides whether an exclusive lock is needed or a
        // standing lock_all epoch already covers local access (MPI-3
        // unified memory model, ordered by the win_sync discipline).
        self.tx()
            .atomic_epoch_begin(&gmr.win, tr.group_rank, LockMode::Exclusive)?;
        self.dla_begin(tr.gmr, true);
        let res = gmr
            .win
            .with_local_mut(|buf| f(&mut buf[tr.disp..tr.disp + len]));
        self.dla_end(tr.gmr);
        self.tx().atomic_epoch_end(&gmr.win, tr.group_rank)?;
        res.map_err(ArmciError::from)
    }

    /// Records entry into an `ARMCI_Access_begin/end` region (the lock
    /// that grants it is already held, so the auditor sees a covered
    /// region).
    pub(crate) fn dla_begin(&self, gmr: u64, exclusive: bool) {
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::DlaBegin {
                    win: gmr,
                    exclusive,
                },
                self.vnow(),
            );
        }
    }

    pub(crate) fn dla_end(&self, gmr: u64) {
        if obs::enabled() {
            obs::instant_at(obs::EventKind::DlaEnd { win: gmr }, self.vnow());
        }
    }

    /// Read-only direct access (shared epoch on self).
    pub(crate) fn access_impl(
        &self,
        addr: GlobalAddr,
        len: usize,
        f: &mut dyn FnMut(&[u8]),
    ) -> ArmciResult<()> {
        if addr.rank != self.world.rank() {
            // Shared-slab read of a node peer's slice (as above).
            return self.access_peer_impl(addr, len, false, &mut |b| f(b));
        }
        // Serialise behind outstanding nonblocking operations (as above).
        self.nb_quiesce()?;
        let tr = self.translate(addr, len)?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        // A standing lock_all epoch already grants shared access; the
        // backend locks otherwise.
        self.tx()
            .atomic_epoch_begin(&gmr.win, tr.group_rank, LockMode::Shared)?;
        self.dla_begin(tr.gmr, false);
        let res = gmr.win.with_local(|buf| f(&buf[tr.disp..tr.disp + len]));
        self.dla_end(tr.gmr);
        self.tx().atomic_epoch_end(&gmr.win, tr.group_rank)?;
        res.map_err(ArmciError::from)
    }
}
