//! Read-modify-write operations (§V-D vs §VIII-B).
//!
//! MPI-2 offers no atomic read-modify-write, and a get + put of the same
//! location within one epoch is erroneous (conflicting accesses). The only
//! standard-conforming construction is therefore **mutex + two epochs**:
//! acquire the GMR's mutex for the target, read in one exclusive epoch,
//! write the updated value in a second, release the mutex. The paper calls
//! this out as a high-latency path and motivates MPI-3's `fetch_and_op`
//! (§VIII-B).
//!
//! Since the synchronization-stack refactor the **native path is the
//! default**: [`crate::AtomicsMode`] selects between backend atomics
//! (fetch-and-op / compare-and-swap through the [`crate::Transport`]
//! hooks, with per-backend pricing) and the Latham-mutex protocol, which
//! is kept as `MutexFallback` — the ablation baseline and the escape
//! hatch for backends that cannot price an atomic width
//! ([`armci::ArmciError::AtomicUnsupported`] is surfaced instead of a
//! silent software emulation). Atomics quiesce only the in-flight
//! nonblocking work they order against
//! ([`crate::ArmciMpi::nb_quiesce_for_atomic`]), and the nonblocking
//! variant attaches its completion request to the engine's aggregate
//! epochs so RMWs ride coalesced/epochless batches (§VIII-B(3)+(4)).

use crate::engine::ExecBuf;
use crate::gmr::Translation;
use crate::{ArmciMpi, AtomicsMode};
use armci::{ArmciError, ArmciResult, GlobalAddr, NbHandle, RmwOp};
use mpisim::mpi3::FetchOp;
use mpisim::LockMode;

/// Width in bytes of every `ARMCI_Rmw` operand.
const RMW_WIDTH: usize = 8;

impl ArmciMpi {
    /// Resolves the configured [`AtomicsMode`] against the wire backend:
    /// `Ok(true)` = native backend atomics, `Ok(false)` = the Latham
    /// mutex protocol. `Native` on a backend that cannot price an 8-byte
    /// atomic is an error, not a silent fallback.
    pub(crate) fn atomics_native(&self) -> ArmciResult<bool> {
        if self.cfg.use_mpi3_rmw {
            return Ok(true);
        }
        let supported = self.tx.atomic_widths().contains(&RMW_WIDTH);
        match self.cfg.atomics {
            AtomicsMode::Auto => Ok(supported || self.cfg.epochless),
            AtomicsMode::Native => {
                if supported {
                    Ok(true)
                } else {
                    Err(ArmciError::AtomicUnsupported {
                        backend: self.tx.name(),
                        width: RMW_WIDTH,
                    })
                }
            }
            AtomicsMode::MutexFallback => Ok(false),
        }
    }

    /// The resolved atomics mode as a provenance string for benchmarks
    /// and reports.
    pub fn atomics_mode_name(&self) -> &'static str {
        match self.atomics_native() {
            Ok(true) => "native",
            Ok(false) => "mutex",
            Err(_) => "unsupported",
        }
    }

    pub(crate) fn rmw_impl(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        let tr = self.translate(target, RMW_WIDTH)?;
        self.stat(|s| s.rmws += 1);
        if self.atomics_native()? {
            // RMW atomicity is per-location: retire only the in-flight
            // nonblocking work this atomic orders against.
            self.nb_quiesce_for_atomic(tr.gmr, tr.group_rank, tr.disp, tr.disp + RMW_WIDTH)?;
            self.stat(|s| s.rmw_native += 1);
            let old = self.rmw_native(op, &tr)?;
            self.note_atomic(tr.gmr, tr.group_rank, false, true, true);
            Ok(old)
        } else {
            // The mutex protocol's two exclusive epochs conflict with any
            // open aggregate epoch on the allocation; quiesce it whole.
            self.nb_quiesce_gmr(tr.gmr)?;
            self.stat(|s| s.rmw_mutex_fallback += 1);
            let old = self.rmw_mutex(op, target)?;
            self.note_atomic(tr.gmr, tr.group_rank, false, false, true);
            Ok(old)
        }
    }

    /// Nonblocking RMW: the fetched value is returned immediately (its
    /// ordering against other atomics is decided at issue), while the
    /// completion round trip joins the engine's aggregate epoch on
    /// `(gmr, target)` and retires at `ARMCI_Wait`/fence like any other
    /// coalesced operation. Backends whose atomics complete inside their
    /// own bracketing (per-op MPI-2 locks, the mutex protocol) return an
    /// eagerly-completed handle.
    pub fn nb_rmw(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<(i64, NbHandle)> {
        let tr = self.translate(target, RMW_WIDTH)?;
        self.stat(|s| s.rmws += 1);
        if !self.atomics_native()? {
            self.nb_quiesce_gmr(tr.gmr)?;
            self.stat(|s| s.rmw_mutex_fallback += 1);
            let old = self.rmw_mutex(op, target)?;
            self.note_atomic(tr.gmr, tr.group_rank, false, false, true);
            return Ok((old, NbHandle::eager()));
        }
        self.nb_quiesce_for_atomic(tr.gmr, tr.group_rank, tr.disp, tr.disp + RMW_WIDTH)?;
        self.stat(|s| s.rmw_native += 1);
        let (x, fop) = fetch_op_of(op);
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        let (old, req) = self
            .tx()
            .rfetch_and_op_i64(&gmr.win, x, tr.group_rank, tr.disp, fop)?;
        drop(gmrs);
        self.note_atomic(tr.gmr, tr.group_rank, false, true, true);
        let handle = if self.tx.epoch_style() == crate::transport::EpochStyle::PerOp {
            // The per-op backend completed inside its own lock/unlock;
            // the request is a zero-length deferral.
            let _ = req;
            NbHandle::eager()
        } else {
            self.nb_attach_atomic(tr.gmr, tr.group_rank, req)
        };
        Ok((old, handle))
    }

    /// ARMCI extension: atomic compare-and-swap of a `width`-byte
    /// integer at `target` — if the current value equals `compare`,
    /// stores `swap`; returns the value observed either way. A width the
    /// backend cannot price surfaces
    /// [`ArmciError::AtomicUnsupported`]; under `MutexFallback` the
    /// operation is emulated with the Latham mutex (same semantics,
    /// mutex pricing).
    pub fn compare_and_swap(
        &self,
        compare: i64,
        swap: i64,
        target: GlobalAddr,
        width: usize,
    ) -> ArmciResult<i64> {
        let native = self.atomics_native()?;
        if native && !self.tx.atomic_widths().contains(&width) {
            return Err(ArmciError::AtomicUnsupported {
                backend: self.tx.name(),
                width,
            });
        }
        if !native && width != RMW_WIDTH {
            // The mutex emulation moves 8-byte cells; other widths are
            // exactly the unpriceable case the error exists for.
            return Err(ArmciError::AtomicUnsupported {
                backend: self.tx.name(),
                width,
            });
        }
        let tr = self.translate(target, width)?;
        self.stat(|s| s.rmws += 1);
        let t0 = if obs::enabled() { self.vnow() } else { 0.0 };
        let old = if native {
            self.nb_quiesce_for_atomic(tr.gmr, tr.group_rank, tr.disp, tr.disp + width)?;
            self.stat(|s| s.rmw_native += 1);
            let gmrs = self.gmrs.borrow();
            let gmr = gmrs
                .get(&tr.gmr)
                .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
            self.tx()
                .compare_and_swap_i64(&gmr.win, compare, swap, tr.group_rank, tr.disp)?
        } else {
            self.nb_quiesce_gmr(tr.gmr)?;
            self.stat(|s| s.rmw_mutex_fallback += 1);
            self.cas_mutex(compare, swap, target)?
        };
        let success = old == compare;
        if !success {
            self.stat(|s| s.cas_retries += 1);
            if obs::enabled() {
                // A failed CAS is wasted round-trip time the caller will
                // spend again — attribute it to the owning rank.
                let src = {
                    let gmrs = self.gmrs.borrow();
                    gmrs.get(&tr.gmr)
                        .map(|g| g.group.comm().world_rank_of(tr.group_rank) as u32)
                        .unwrap_or(tr.group_rank as u32)
                };
                obs::span(
                    obs::EventKind::Wait {
                        cat: obs::WaitCat::CasRetry,
                        src,
                        obj: tr.gmr,
                    },
                    t0,
                    self.vnow(),
                );
            }
        }
        self.note_atomic(tr.gmr, tr.group_rank, true, native, success);
        Ok(old)
    }

    /// Emits the metrics-only atomic-operation event.
    fn note_atomic(&self, gmr: u64, target: usize, cas: bool, native: bool, success: bool) {
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::AtomicOp {
                    win: gmr,
                    target: target as u32,
                    cas,
                    native,
                    success,
                },
                self.vnow(),
            );
        }
    }

    /// The MPI-2 protocol: per-GMR mutex, read epoch, write epoch.
    fn rmw_mutex(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        self.mutexed_update(target, |old| match op {
            RmwOp::FetchAdd(x) => Some(old.wrapping_add(x)),
            RmwOp::Swap(x) => Some(x),
        })
    }

    /// Compare-and-swap emulated under the Latham mutex: read epoch,
    /// conditional write epoch.
    fn cas_mutex(&self, compare: i64, swap: i64, target: GlobalAddr) -> ArmciResult<i64> {
        self.mutexed_update(target, |old| if old == compare { Some(swap) } else { None })
    }

    /// The shared §V-D construction: GMR mutex around a read epoch and
    /// (if `f` returns a new value) a write epoch, both exclusive.
    fn mutexed_update(
        &self,
        target: GlobalAddr,
        f: impl FnOnce(i64) -> Option<i64>,
    ) -> ArmciResult<i64> {
        let tr = self.translate(target, RMW_WIDTH)?;
        // One mutex per group member, hosted on the member: serialises
        // RMWs per target process without a global bottleneck.
        self.stat(|s| s.mutex_locks += 1);
        {
            let gmrs = self.gmrs.borrow();
            let gmr = gmrs
                .get(&tr.gmr)
                .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
            gmr.rmw_mutexes.lock(self.tx(), 0, tr.group_rank)?;
        }
        let result = (|| {
            // Read epoch (always exclusive — the hint system never
            // downgrades the RMW protocol).
            let mut buf = [0u8; RMW_WIDTH];
            let read = self.plan_fixed(target, RMW_WIDTH, LockMode::Exclusive)?;
            self.run_plans(
                std::slice::from_ref(&read),
                &ExecBuf::Get(buf.as_mut_ptr(), RMW_WIDTH),
            )?;
            let old = i64::from_le_bytes(buf);
            if let Some(new) = f(old) {
                // Write epoch.
                let bytes = new.to_le_bytes();
                let write = self.plan_fixed(target, RMW_WIDTH, LockMode::Exclusive)?;
                self.run_plans(
                    std::slice::from_ref(&write),
                    &ExecBuf::Put(bytes.as_ptr(), RMW_WIDTH),
                )?;
            }
            Ok(old)
        })();
        // Release the mutex even on error.
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        gmr.rmw_mutexes.unlock(self.tx(), 0, tr.group_rank)?;
        result
    }

    /// The native path: one atomic `fetch_and_op` through the backend's
    /// atomic hooks (a shared epoch on MPI-2, the standing `lock_all` on
    /// MPI-3, the NIC on the channel backend).
    fn rmw_native(&self, op: RmwOp, tr: &Translation) -> ArmciResult<i64> {
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        let (x, fop) = fetch_op_of(op);
        Ok(self
            .tx()
            .fetch_and_op_i64(&gmr.win, x, tr.group_rank, tr.disp, fop)?)
    }
}

/// Maps an ARMCI RMW op onto the MPI-3 fetch-and-op operator.
fn fetch_op_of(op: RmwOp) -> (i64, FetchOp) {
    match op {
        RmwOp::FetchAdd(x) => (x, FetchOp::Sum),
        RmwOp::Swap(x) => (x, FetchOp::Replace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{
        EpochStyle, MpiRmaTransport, ProgressSupport, ShmTransport, Transport, TransportKind,
        TransportStats,
    };
    use crate::{Config, ProgressMode};
    use armci::Armci;
    use mpisim::dtype::Datatype;
    use mpisim::mpi3::RmaRequest;
    use mpisim::{
        AccOp, ElemType, MpiError, MpiResult, Proc, RmaClass, Runtime, RuntimeConfig, WinHandle,
    };
    use simnet::{Platform, PlatformId};
    use std::cell::Cell;
    use std::rc::Rc;

    /// Injectable wire faults, shared with the test body: `atomics` fails
    /// every backend atomic while set; `gets_after` lets N get-family
    /// transfers through, fails the next one once, then self-heals (a
    /// transient wire blip mid-protocol); `no_agent` masks the wire's
    /// progress-agent capability so forced-`Agent` error surfacing is
    /// testable.
    #[derive(Default)]
    struct Faults {
        atomics: Cell<bool>,
        gets_after: Cell<Option<u32>>,
        no_agent: Cell<bool>,
    }

    impl Faults {
        fn get_ok(&self) -> MpiResult<()> {
            match self.gets_after.get() {
                Some(0) => {
                    self.gets_after.set(None);
                    Err(MpiError::WinFreed)
                }
                Some(n) => {
                    self.gets_after.set(Some(n - 1));
                    Ok(())
                }
                None => Ok(()),
            }
        }

        fn atomic_ok(&self) -> MpiResult<()> {
            if self.atomics.get() {
                Err(MpiError::WinFreed)
            } else {
                Ok(())
            }
        }
    }

    /// A wire backend that delegates to a real one but loses atomics /
    /// gets on command — the "backend lost mid-rmw" scenario, symmetric
    /// to the mid-lock loss test in [`crate::mutex`].
    struct LossyTransport {
        inner: Box<dyn Transport>,
        faults: Rc<Faults>,
    }

    impl Transport for LossyTransport {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn epoch_style(&self) -> EpochStyle {
            self.inner.epoch_style()
        }
        fn attach(&self, win: &WinHandle) -> MpiResult<()> {
            self.inner.attach(win)
        }
        fn detach(&self, win: &WinHandle) -> MpiResult<()> {
            self.inner.detach(win)
        }
        fn epoch_begin(&self, win: &WinHandle, target: usize, mode: LockMode) -> MpiResult<()> {
            self.inner.epoch_begin(win, target, mode)
        }
        fn epoch_end(&self, win: &WinHandle, target: usize) -> MpiResult<()> {
            self.inner.epoch_end(win, target)
        }
        fn atomic_epoch_begin(
            &self,
            win: &WinHandle,
            target: usize,
            mode: LockMode,
        ) -> MpiResult<()> {
            self.inner.atomic_epoch_begin(win, target, mode)
        }
        fn atomic_epoch_end(&self, win: &WinHandle, target: usize) -> MpiResult<()> {
            self.inner.atomic_epoch_end(win, target)
        }
        fn put(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
        ) -> MpiResult<()> {
            self.inner.put(win, origin, odt, target, tdisp, tdt)
        }
        fn get(
            &self,
            win: &WinHandle,
            origin: &mut [u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
        ) -> MpiResult<()> {
            self.faults.get_ok()?;
            self.inner.get(win, origin, odt, target, tdisp, tdt)
        }
        fn accumulate(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
            elem: ElemType,
            op: AccOp,
        ) -> MpiResult<()> {
            self.inner
                .accumulate(win, origin, odt, target, tdisp, tdt, elem, op)
        }
        fn put_bytes(
            &self,
            win: &WinHandle,
            origin: &[u8],
            target: usize,
            tdisp: usize,
        ) -> MpiResult<()> {
            self.inner.put_bytes(win, origin, target, tdisp)
        }
        fn get_bytes(
            &self,
            win: &WinHandle,
            origin: &mut [u8],
            target: usize,
            tdisp: usize,
        ) -> MpiResult<()> {
            self.faults.get_ok()?;
            self.inner.get_bytes(win, origin, target, tdisp)
        }
        fn rput(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
        ) -> MpiResult<RmaRequest> {
            self.inner.rput(win, origin, odt, target, tdisp, tdt)
        }
        fn rget(
            &self,
            win: &WinHandle,
            origin: &mut [u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
        ) -> MpiResult<RmaRequest> {
            self.faults.get_ok()?;
            self.inner.rget(win, origin, odt, target, tdisp, tdt)
        }
        fn racc(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
            elem: ElemType,
            op: AccOp,
        ) -> MpiResult<RmaRequest> {
            self.inner
                .racc(win, origin, odt, target, tdisp, tdt, elem, op)
        }
        fn complete(&self, win: &WinHandle, req: RmaRequest) {
            self.inner.complete(win, req)
        }
        fn stage_put(
            &self,
            win: &WinHandle,
            origin: &[u8],
            target: usize,
            tdisp: usize,
        ) -> MpiResult<()> {
            self.inner.stage_put(win, origin, target, tdisp)
        }
        fn stage_get(
            &self,
            win: &WinHandle,
            origin: &mut [u8],
            target: usize,
            tdisp: usize,
        ) -> MpiResult<()> {
            self.faults.get_ok()?;
            self.inner.stage_get(win, origin, target, tdisp)
        }
        fn stage_acc(
            &self,
            win: &WinHandle,
            origin: &[u8],
            target: usize,
            tdisp: usize,
            elem: ElemType,
            op: AccOp,
        ) -> MpiResult<()> {
            self.inner.stage_acc(win, origin, target, tdisp, elem, op)
        }
        fn issue_merged(
            &self,
            win: &WinHandle,
            class: RmaClass,
            target: usize,
            segs: &[(usize, usize)],
        ) -> MpiResult<f64> {
            self.inner.issue_merged(win, class, target, segs)
        }
        fn fetch_and_op_i64(
            &self,
            win: &WinHandle,
            operand: i64,
            target: usize,
            tdisp: usize,
            op: FetchOp,
        ) -> MpiResult<i64> {
            self.faults.atomic_ok()?;
            self.inner.fetch_and_op_i64(win, operand, target, tdisp, op)
        }
        fn atomic_widths(&self) -> &'static [usize] {
            self.inner.atomic_widths()
        }
        fn compare_and_swap_i64(
            &self,
            win: &WinHandle,
            compare: i64,
            swap: i64,
            target: usize,
            tdisp: usize,
        ) -> MpiResult<i64> {
            self.faults.atomic_ok()?;
            self.inner
                .compare_and_swap_i64(win, compare, swap, target, tdisp)
        }
        fn rfetch_and_op_i64(
            &self,
            win: &WinHandle,
            operand: i64,
            target: usize,
            tdisp: usize,
            op: FetchOp,
        ) -> MpiResult<(i64, RmaRequest)> {
            self.faults.atomic_ok()?;
            self.inner
                .rfetch_and_op_i64(win, operand, target, tdisp, op)
        }
        fn stats(&self) -> TransportStats {
            self.inner.stats()
        }
        fn progress_support(&self) -> ProgressSupport {
            if self.faults.no_agent.get() {
                ProgressSupport::Unsupported
            } else {
                self.inner.progress_support()
            }
        }
    }

    /// Runtime with `ranks_per_node` cores per node and no clock charging.
    fn netcfg(ranks_per_node: u32) -> RuntimeConfig {
        let mut platform = Platform::get(PlatformId::InfiniBandCluster).customized("rmw-loss");
        platform.sockets_per_node = 1;
        platform.cores_per_socket = ranks_per_node;
        RuntimeConfig {
            platform,
            charge_time: false,
            ..Default::default()
        }
    }

    /// Builds the runtime and splices the fault-injecting wrapper around
    /// its wire backend (or around a [`ShmTransport`] wire when asked).
    fn lossy_runtime(p: &Proc, cfg: Config, shm_wire: bool) -> (ArmciMpi, Rc<Faults>) {
        let mut rt = ArmciMpi::with_config(p, cfg);
        let faults = Rc::new(Faults::default());
        let placeholder: Box<dyn Transport> = Box::new(MpiRmaTransport { epochless: false });
        let mut inner = std::mem::replace(&mut rt.tx, placeholder);
        if shm_wire {
            inner = Box::new(ShmTransport::new(false));
        }
        rt.tx = Box::new(LossyTransport {
            inner,
            faults: faults.clone(),
        });
        (rt, faults)
    }

    /// The native-path symmetric of the mid-lock loss test: a backend
    /// loss mid-rmw must surface as an error and leak neither epochs nor
    /// nonblocking queue slots — subsequent atomics, nonblocking work and
    /// data epochs on the same target must all still succeed.
    fn native_loss_scenario(cfg: Config, shm_wire: bool, rpn: u32) {
        Runtime::run_with(2, netcfg(rpn), move |p: &Proc| {
            let (rt, faults) = lossy_runtime(p, cfg.clone(), shm_wire);
            let bases = rt.malloc(256).unwrap();
            rt.barrier();
            if p.rank() == 0 {
                let t = bases[1];
                assert_eq!(rt.atomics_mode_name(), "native");
                assert_eq!(rt.rmw(RmwOp::FetchAdd(1), t).unwrap(), 0);
                // Nonblocking traffic on a disjoint range of the same
                // allocation: it must survive the failed atomic next to it.
                let h = rt.nb_put(&[7u8; 32], t.offset(64)).unwrap();
                faults.atomics.set(true);
                assert!(rt.rmw(RmwOp::FetchAdd(1), t).is_err());
                assert!(rt.compare_and_swap(1, 9, t, 8).is_err());
                assert!(rt.nb_rmw(RmwOp::FetchAdd(1), t).is_err());
                faults.atomics.set(false);
                rt.wait(h).unwrap();
                // No leaked epoch or queue slot: everything still works,
                // and the failed attempts mutated nothing.
                assert_eq!(rt.rmw(RmwOp::FetchAdd(1), t).unwrap(), 1);
                let (old, h) = rt.nb_rmw(RmwOp::FetchAdd(1), t).unwrap();
                assert_eq!(old, 2);
                rt.wait(h).unwrap();
                let h = rt.nb_put(&[3u8; 8], t.offset(64)).unwrap();
                rt.wait(h).unwrap();
                let mut buf = [0u8; 8];
                rt.get(t, &mut buf).unwrap();
                assert_eq!(i64::from_le_bytes(buf), 3);
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
    }

    #[test]
    fn backend_loss_mid_rmw_mpi_rma() {
        native_loss_scenario(
            Config {
                shm: false,
                ..Default::default()
            },
            false,
            1,
        );
    }

    #[test]
    fn backend_loss_mid_rmw_mpi_rma_epochless() {
        native_loss_scenario(
            Config {
                shm: false,
                epochless: true,
                ..Default::default()
            },
            false,
            1,
        );
    }

    #[test]
    fn backend_loss_mid_rmw_channel() {
        native_loss_scenario(
            Config {
                shm: false,
                transport: TransportKind::Channel,
                ..Default::default()
            },
            false,
            1,
        );
    }

    #[test]
    fn backend_loss_mid_rmw_shm() {
        // Both ranks on one node; the shm tier serves as the wire
        // backend. `shm: true` so allocations are shared-backed — the
        // slab is what makes node peers reachable for the shm wire.
        native_loss_scenario(
            Config {
                shm: true,
                ..Default::default()
            },
            true,
            2,
        );
    }

    #[test]
    fn backend_loss_mid_mutex_rmw_releases_mutex_and_epochs() {
        // The fallback-path symmetric: the wire blips during the data
        // epochs *inside* the held mutex. The error must surface and the
        // mutex queue slot plus the exclusive data epoch must both be
        // released, or the retry would wedge.
        let cfg = Config {
            shm: false,
            atomics: AtomicsMode::MutexFallback,
            ..Default::default()
        };
        Runtime::run_with(2, netcfg(1), move |p: &Proc| {
            let (rt, faults) = lossy_runtime(p, cfg.clone(), false);
            let bases = rt.malloc(256).unwrap();
            rt.barrier();
            if p.rank() == 0 {
                let t = bases[1];
                assert_eq!(rt.atomics_mode_name(), "mutex");
                assert_eq!(rt.rmw(RmwOp::FetchAdd(1), t).unwrap(), 0);
                // Let the lock protocol's snapshot get through, then fail
                // the read epoch's transfer mid-rmw.
                faults.gets_after.set(Some(1));
                assert!(rt.rmw(RmwOp::FetchAdd(1), t).is_err());
                // The blip healed; a leaked mutex slot or epoch would
                // wedge or error this retry.
                assert_eq!(rt.rmw(RmwOp::FetchAdd(1), t).unwrap(), 1);
                assert_eq!(rt.stats().mutex_locks, 3);
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
    }

    /// Like [`netcfg`] but with real virtual-time charging, so the
    /// progress agent has busy profiles to price while the wire blips.
    fn timedcfg(rpn: u32) -> RuntimeConfig {
        RuntimeConfig {
            charge_time: true,
            ..netcfg(rpn)
        }
    }

    #[test]
    fn backend_loss_mid_agent_drain_releases_epochs() {
        // The agent-mode symmetric of the scenarios above: the wire
        // blips while the per-node progress agent is actively draining
        // against a busy target. The error must surface and the agent
        // must leak neither the epoch nor a nonblocking queue slot —
        // blocking, atomic and queued traffic must all still flow (and
        // still be agent-routed) after the blip heals.
        let cfg = Config {
            shm: false,
            progress: ProgressMode::Agent,
            ..Default::default()
        };
        Runtime::run_with(2, timedcfg(1), move |p: &Proc| {
            let (rt, faults) = lossy_runtime(p, cfg.clone(), false);
            let bases = rt.malloc(256).unwrap();
            assert_eq!(rt.progress_mode_name(), "agent");
            // Both ranks bank compute so the barrier publishes busy
            // profiles — the agent coupling is hot on the ops below.
            p.compute(50e-6);
            rt.barrier();
            if p.rank() == 0 {
                let t = bases[1];
                let h = rt.nb_put(&[7u8; 32], t.offset(64)).unwrap();
                faults.gets_after.set(Some(0));
                let mut buf = [0u8; 8];
                assert!(rt.get(t, &mut buf).is_err());
                faults.atomics.set(true);
                assert!(rt.rmw(RmwOp::FetchAdd(1), t).is_err());
                faults.atomics.set(false);
                rt.wait(h).unwrap();
                assert_eq!(rt.rmw(RmwOp::FetchAdd(1), t).unwrap(), 0);
                rt.get(t.offset(64), &mut buf).unwrap();
                assert_eq!(buf, [7u8; 8]);
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
    }

    #[test]
    fn forced_agent_on_unsupported_backend_fails_malloc() {
        // `Agent` on a wire that cannot route through an agent must
        // fail the allocation loudly — never a silent agentless run —
        // and the failed allocation must leak nothing.
        let agent = Config {
            shm: false,
            progress: ProgressMode::Agent,
            ..Default::default()
        };
        Runtime::run_with(2, netcfg(1), move |p: &Proc| {
            let (rt, faults) = lossy_runtime(p, agent.clone(), false);
            faults.no_agent.set(true);
            assert!(matches!(
                rt.malloc(64),
                Err(armci::ArmciError::ProgressUnsupported { .. })
            ));
            // Capability restored: the same runtime allocates and runs.
            faults.no_agent.set(false);
            let bases = rt.malloc(64).unwrap();
            assert_eq!(rt.progress_mode_name(), "agent");
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
        // `Auto` on the same capability-less wire degrades to host
        // progress instead of erroring.
        let auto = Config {
            shm: false,
            progress: ProgressMode::Auto,
            ..Default::default()
        };
        Runtime::run_with(2, netcfg(1), move |p: &Proc| {
            let (rt, faults) = lossy_runtime(p, auto.clone(), false);
            faults.no_agent.set(true);
            let bases = rt.malloc(64).unwrap();
            assert_eq!(rt.progress_mode_name(), "none");
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
    }

    /// Asking any backend for a CAS width it cannot price must surface
    /// [`ArmciError::AtomicUnsupported`] — never a silent software
    /// emulation with a different atomicity domain.
    fn assert_width_unsupported(cfg: Config, shm_wire: bool, rpn: u32) {
        Runtime::run_with(2, netcfg(rpn), move |p: &Proc| {
            let (rt, _faults) = lossy_runtime(p, cfg.clone(), shm_wire);
            let bases = rt.malloc(64).unwrap();
            rt.barrier();
            if p.rank() == 0 {
                match rt.compare_and_swap(0, 1, bases[1], 4) {
                    Err(ArmciError::AtomicUnsupported { width: 4, backend }) => {
                        assert!(!backend.is_empty());
                    }
                    other => panic!("expected AtomicUnsupported, got {other:?}"),
                }
                // The supported width still works on the same runtime.
                assert_eq!(rt.compare_and_swap(0, 1, bases[1], 8).unwrap(), 0);
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
    }

    #[test]
    fn unsupported_cas_width_mpi_rma() {
        assert_width_unsupported(
            Config {
                shm: false,
                ..Default::default()
            },
            false,
            1,
        );
    }

    #[test]
    fn unsupported_cas_width_channel() {
        assert_width_unsupported(
            Config {
                shm: false,
                transport: TransportKind::Channel,
                ..Default::default()
            },
            false,
            1,
        );
    }

    #[test]
    fn unsupported_cas_width_shm() {
        assert_width_unsupported(
            Config {
                shm: false,
                ..Default::default()
            },
            true,
            2,
        );
    }

    #[test]
    fn unsupported_cas_width_mutex_fallback() {
        assert_width_unsupported(
            Config {
                shm: false,
                atomics: AtomicsMode::MutexFallback,
                ..Default::default()
            },
            false,
            1,
        );
    }
}
