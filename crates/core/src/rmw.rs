//! Read-modify-write operations (§V-D).
//!
//! MPI-2 offers no atomic read-modify-write, and a get + put of the same
//! location within one epoch is erroneous (conflicting accesses). The only
//! standard-conforming construction is therefore **mutex + two epochs**:
//! acquire the GMR's mutex for the target, read in one exclusive epoch,
//! write the updated value in a second, release the mutex. Both epochs are
//! ordinary engine transfer plans with a forced-exclusive lock mode. The
//! paper calls this out as a high-latency path and motivates MPI-3's
//! `fetch_and_op` (§VIII-B); [`crate::Config::use_mpi3_rmw`] switches to
//! that extension for the ablation study.

use crate::engine::ExecBuf;
use crate::ArmciMpi;
use armci::{ArmciResult, GlobalAddr, RmwOp};
use mpisim::mpi3::FetchOp;
use mpisim::LockMode;

impl ArmciMpi {
    pub(crate) fn rmw_impl(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        // RMW atomicity is per-location: serialise against nonblocking
        // transfers on this allocation only, so a NXTVAL counter RMW does
        // not retire in-flight transfers on unrelated arrays.
        let tr = self.translate(target, 8)?;
        self.nb_quiesce_gmr(tr.gmr)?;
        self.stat(|s| s.rmws += 1);
        if self.cfg.use_mpi3_rmw || self.cfg.epochless {
            self.rmw_mpi3(op, target)
        } else {
            self.rmw_mutex(op, target)
        }
    }

    /// The MPI-2 protocol: per-GMR mutex, read epoch, write epoch.
    fn rmw_mutex(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        let tr = self.translate(target, 8)?;
        // One mutex per group member, hosted on the member: serialises
        // RMWs per target process without a global bottleneck.
        self.stat(|s| s.mutex_locks += 1);
        {
            let gmrs = self.gmrs.borrow();
            let gmr = gmrs
                .get(&tr.gmr)
                .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
            gmr.rmw_mutexes.lock(self.tx(), 0, tr.group_rank)?;
        }
        let result = (|| {
            // Read epoch (always exclusive — the hint system never
            // downgrades the RMW protocol).
            let mut buf = [0u8; 8];
            let read = self.plan_fixed(target, 8, LockMode::Exclusive)?;
            self.run_plans(
                std::slice::from_ref(&read),
                &ExecBuf::Get(buf.as_mut_ptr(), 8),
            )?;
            let old = i64::from_le_bytes(buf);
            let new = match op {
                RmwOp::FetchAdd(x) => old.wrapping_add(x),
                RmwOp::Swap(x) => x,
            };
            // Write epoch.
            let bytes = new.to_le_bytes();
            let write = self.plan_fixed(target, 8, LockMode::Exclusive)?;
            self.run_plans(
                std::slice::from_ref(&write),
                &ExecBuf::Put(bytes.as_ptr(), 8),
            )?;
            Ok(old)
        })();
        // Release the mutex even on error.
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        gmr.rmw_mutexes.unlock(self.tx(), 0, tr.group_rank)?;
        result
    }

    /// The MPI-3 extension path: one atomic `fetch_and_op`.
    fn rmw_mpi3(&self, op: RmwOp, target: GlobalAddr) -> ArmciResult<i64> {
        let tr = self.translate(target, 8)?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs
            .get(&tr.gmr)
            .ok_or_else(|| crate::gmr::gmr_vanished(tr.gmr))?;
        // Atomicity bracketing belongs to the backend: MPI RMA opens a
        // shared epoch unless the standing lock_all covers it, the
        // channel backend runs the atomic on the NIC with no epoch.
        let (x, fop) = match op {
            RmwOp::FetchAdd(x) => (x, FetchOp::Sum),
            RmwOp::Swap(x) => (x, FetchOp::Replace),
        };
        Ok(self
            .tx()
            .fetch_and_op_i64(&gmr.win, x, tr.group_rank, tr.disp, fop)?)
    }
}
