//! Sharded/combining NXTVAL counter.
//!
//! NXTVAL — Global Arrays' dynamic load-balancing ticket counter — is a
//! single shared integer hit by every rank, the paper's poster child for
//! RMW scalability (§V-D, §VIII-B). Even with native atomics, one home
//! rank serialises every increment; past a few hundred ranks the home
//! NIC is the plateau. [`NxtvalCounter`] scales past it by **sharding
//! the frontier per node**: each node's leader holds a shard word from
//! which node peers take tickets with local CAS, and the home counter is
//! only touched once per `block` tickets (the refill). The shard word
//! packs `next << 16 | remaining`, so one CAS both claims a ticket and
//! decrements the stock.
//!
//! * `block == 1` degenerates to the flat counter: every `next()` is a
//!   single `fetch_and_add` on the home rank, bit-identical in sequence
//!   to `ARMCI_Rmw` on a shared cell (the mode-equivalence proptest
//!   pins this).
//! * `block > 1` trades strict FIFO ticket order for locality: tickets
//!   stay unique and per-rank monotonic, and the home rank sees
//!   `1/block` of the traffic.
//!
//! Losers of a refill race return their unused tickets to the `holes`
//! cell, and [`NxtvalCounter::drain`] merges still-stocked shard tails
//! back into the home counter (CAS) or the holes cell, so
//! [`NxtvalCounter::issued`] — `home - holes` — equals the number of
//! tickets actually handed out once the counter is drained.
//!
//! Cell layout (24 bytes per rank, one allocation):
//! `rank 0, offset 0` = home counter; `rank 0, offset 8` = holes;
//! `node leader, offset 16` = that node's shard word.

use crate::ArmciMpi;
use armci::{Armci, ArmciResult, GlobalAddr, RmwOp};

/// Byte offset of the holes cell on the home rank.
const HOLES_OFF: usize = 8;
/// Byte offset of the shard word on each node leader.
const SHARD_OFF: usize = 16;
/// Bytes of counter state per rank.
const SLICE: usize = 24;

/// Packs a shard frontier: `next` ticket and `remaining` stock.
fn pack(next: i64, remaining: u16) -> i64 {
    (next << 16) | remaining as i64
}

/// Unpacks a shard word into `(next, remaining)`.
fn unpack(word: i64) -> (i64, u16) {
    (word >> 16, (word & 0xFFFF) as u16)
}

/// A distributed NXTVAL ticket counter with per-node shards. See the
/// module docs for the protocol; create collectively with
/// [`NxtvalCounter::create`], destroy collectively with
/// [`NxtvalCounter::destroy`].
pub struct NxtvalCounter {
    /// Per-group-rank base addresses of the counter allocation.
    bases: Vec<GlobalAddr>,
    /// Refill block size (`1` = flat counter, no sharding).
    block: u16,
    /// This rank's node-leader group rank (shard host).
    leader: usize,
    /// Is this rank its node's leader (shard owner / drainer)?
    is_leader: bool,
}

impl NxtvalCounter {
    /// Collectively creates a counter over the world group. `block` is
    /// the per-node refill granularity; `1` disables sharding.
    pub fn create(rt: &ArmciMpi, block: u16) -> ArmciResult<NxtvalCounter> {
        assert!(block >= 1, "block size must be at least 1");
        let bases = rt.malloc(SLICE)?;
        // Zero this rank's slice (home, holes, shard word all start 0).
        rt.access_mut(bases[rt.rank()], SLICE, &mut |b| b.fill(0))?;
        let node_of = |r: usize| rt.world.platform().node_of(rt.world.world_rank_of(r));
        let me = rt.rank();
        let my_node = node_of(me);
        let leader = (0..rt.nprocs())
            .find(|&r| node_of(r) == my_node)
            .expect("every rank has a node leader");
        rt.barrier();
        Ok(NxtvalCounter {
            bases,
            block,
            leader,
            is_leader: leader == me,
        })
    }

    /// The home counter cell.
    fn home(&self) -> GlobalAddr {
        self.bases[0]
    }

    /// The returned-tickets cell.
    fn holes(&self) -> GlobalAddr {
        let h = self.bases[0];
        GlobalAddr {
            rank: h.rank,
            addr: h.addr + HOLES_OFF,
        }
    }

    /// This rank's node shard word.
    fn shard(&self) -> GlobalAddr {
        let b = self.bases[self.leader];
        GlobalAddr {
            rank: b.rank,
            addr: b.addr + SHARD_OFF,
        }
    }

    /// Takes the next ticket. Unique across ranks; monotonic per rank;
    /// globally FIFO iff `block == 1`.
    pub fn next(&self, rt: &ArmciMpi) -> ArmciResult<i64> {
        if self.block <= 1 {
            return rt.rmw(RmwOp::FetchAdd(1), self.home());
        }
        loop {
            // Atomic read of the shard frontier.
            let word = rt.rmw(RmwOp::FetchAdd(0), self.shard())?;
            let (next, remaining) = unpack(word);
            if remaining > 0 {
                // Claim `next` and decrement the stock in one CAS.
                let claimed = pack(next + 1, remaining - 1);
                if rt.compare_and_swap(word, claimed, self.shard(), 8)? == word {
                    return Ok(next);
                }
                continue; // lost the race; retry (counted as a CAS retry)
            }
            // Shard empty: fetch a block from home. The refiller keeps
            // the block's first ticket for itself and installs the rest.
            let base = rt.rmw(RmwOp::FetchAdd(self.block as i64), self.home())?;
            let installed = pack(base + 1, self.block - 1);
            if rt.compare_and_swap(word, installed, self.shard(), 8)? != word {
                // A concurrent refiller won the install; our remainder
                // would orphan the shard word, so return it to `holes`.
                rt.rmw(RmwOp::FetchAdd(self.block as i64 - 1), self.holes())?;
            }
            return Ok(base);
        }
    }

    /// Merges this node's remaining shard stock back: the frontier tail
    /// is CAS-merged into the home counter when nothing was issued past
    /// it, otherwise returned to the holes cell. Only the node leader
    /// acts; call from every rank (with all `next` traffic quiesced) and
    /// follow with a barrier before reading [`NxtvalCounter::issued`].
    pub fn drain(&self, rt: &ArmciMpi) -> ArmciResult<()> {
        if !self.is_leader || self.block <= 1 {
            return Ok(());
        }
        loop {
            let word = rt.rmw(RmwOp::FetchAdd(0), self.shard())?;
            let (next, remaining) = unpack(word);
            if word == 0 {
                return Ok(());
            }
            if rt.compare_and_swap(word, 0, self.shard(), 8)? != word {
                continue; // raced with a late next(); re-read
            }
            if remaining > 0 {
                // The un-issued tail is [next, next+remaining). If the
                // home counter still sits exactly at the block end, the
                // tail is the global frontier — roll it back.
                let end = next + remaining as i64;
                if rt.compare_and_swap(end, next, self.home(), 8)? != end {
                    // Home moved on (another node refilled after us):
                    // the tail is a hole in the issued sequence.
                    rt.rmw(RmwOp::FetchAdd(remaining as i64), self.holes())?;
                }
            }
            return Ok(());
        }
    }

    /// Tickets handed out so far: home counter minus returned tickets.
    /// Exact once every shard is [`drained`](NxtvalCounter::drain).
    pub fn issued(&self, rt: &ArmciMpi) -> ArmciResult<i64> {
        let home = rt.rmw(RmwOp::FetchAdd(0), self.home())?;
        let holes = rt.rmw(RmwOp::FetchAdd(0), self.holes())?;
        Ok(home - holes)
    }

    /// Collectively frees the counter's memory.
    pub fn destroy(self, rt: &ArmciMpi) -> ArmciResult<()> {
        rt.barrier();
        rt.free(self.bases[rt.rank()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (next, rem) in [(0i64, 0u16), (1, 7), (123_456, 65_535), (1 << 40, 1)] {
            assert_eq!(unpack(pack(next, rem)), (next, rem));
        }
    }
}
