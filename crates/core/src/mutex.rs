//! ARMCI mutexes via the MPI RMA queueing-mutex algorithm of Latham,
//! Ross & Thakur (§V-D).
//!
//! A set of `count` mutexes is hosted on *every* process of the group. The
//! state of mutex `m` on host `p` is a byte vector `B` of length `nproc`
//! in `p`'s window slice; `B[i] = 1` means process `i` holds or has
//! requested the mutex.
//!
//! **Lock** (from process `i`): within one exclusive epoch on the host,
//! set `B[i] = 1` and fetch all other entries (two non-overlapping gets,
//! so the epoch contains no conflicting accesses). If every other entry is
//! zero the lock is held; otherwise process `i` has enqueued itself and
//! blocks in a **wildcard-source receive** — waiting locally, generating
//! no network traffic, exactly the property the paper highlights.
//!
//! **Unlock**: within one exclusive epoch set `B[i] = 0` and fetch the
//! rest; scan for a waiting requester starting at `i+1` (wrapping), which
//! provides fairness, and forward the mutex with a zero-byte notification
//! message.
//!
//! Each set duplicates its communicator so notification messages can never
//! be confused between sets (or with application traffic).

use crate::transport::Transport;
use armci::{ArmciError, ArmciResult};
use mpisim::{Comm, LockMode, RecvSrc, WinHandle};
use std::cell::RefCell;
use std::collections::HashSet;

/// One collection of `count` mutexes hosted on every member of a group.
pub(crate) struct MutexSet {
    comm: Comm,
    win: WinHandle,
    count: usize,
    /// Mutexes this process currently holds: `(mutex, host group rank)`.
    held: RefCell<HashSet<(usize, usize)>>,
}

impl MutexSet {
    /// Collectively creates the set over `comm`'s group. `progress` is
    /// the runtime's resolved discipline; the mutex window's handoff
    /// rounds couple to busy targets the same way data windows do.
    pub fn create(comm: &Comm, count: usize, progress: mpisim::ProgressModel) -> MutexSet {
        // Dedicated communicator: notification tags = mutex index.
        let dup = comm.dup();
        let nproc = dup.size();
        let win = WinHandle::create(&dup, count * nproc);
        win.set_progress_model(progress);
        MutexSet {
            comm: dup,
            win,
            count,
            held: RefCell::new(HashSet::new()),
        }
    }

    /// Number of mutexes per host.
    #[allow(dead_code)]
    pub fn count(&self) -> usize {
        self.count
    }

    fn check_args(&self, mutex: usize, host: usize) -> ArmciResult<()> {
        if mutex >= self.count {
            return Err(ArmciError::MutexMisuse(format!(
                "mutex {mutex} out of range (count {})",
                self.count
            )));
        }
        if host >= self.comm.size() {
            return Err(ArmciError::MutexMisuse(format!(
                "host {host} out of range (group size {})",
                self.comm.size()
            )));
        }
        Ok(())
    }

    /// Acquires `mutex` on `host` (group rank). Blocks until granted.
    ///
    /// The put-then-snapshot sequence must be atomic with respect to
    /// other ranks' sequences, so it runs inside the transport's
    /// mutual-exclusion bracketing rather than a plain data epoch.
    pub fn lock(&self, tx: &dyn Transport, mutex: usize, host: usize) -> ArmciResult<()> {
        self.check_args(mutex, host)?;
        if self.held.borrow().contains(&(mutex, host)) {
            return Err(ArmciError::MutexMisuse(format!(
                "mutex {mutex}@{host} already held by this process"
            )));
        }
        let nproc = self.comm.size();
        let me = self.comm.rank();
        let base = mutex * nproc;

        // One exclusive context: B[me] = 1, fetch all other entries.
        // Always close the context, even if a transfer fails mid-way —
        // leaving the host locked would wedge every other requester.
        let mut before = vec![0u8; me];
        let mut after = vec![0u8; nproc - me - 1];
        tx.atomic_epoch_begin(&self.win, host, LockMode::Exclusive)?;
        let res: mpisim::MpiResult<()> = (|| {
            tx.put_bytes(&self.win, &[1], host, base + me)?;
            if !before.is_empty() {
                tx.get_bytes(&self.win, &mut before, host, base)?;
            }
            if !after.is_empty() {
                tx.get_bytes(&self.win, &mut after, host, base + me + 1)?;
            }
            Ok(())
        })();
        let end = tx.atomic_epoch_end(&self.win, host);
        res.map_err(ArmciError::from)?;
        end?;

        let contended = before.iter().chain(after.iter()).any(|&b| b != 0);
        if contended {
            // Enqueued: wait locally for the zero-byte handoff.
            let t0 = self.comm.clock_now();
            let (_, st) = self.comm.recv(RecvSrc::Any, mutex as i32);
            if obs::enabled() {
                obs::span(
                    obs::EventKind::MutexWait {
                        win: self.win.id(),
                        mutex: mutex as u32,
                        host: host as u32,
                        src: self.comm.world_rank_of(st.source) as u32,
                    },
                    t0,
                    self.comm.clock_now(),
                );
            }
        }
        self.held.borrow_mut().insert((mutex, host));
        Ok(())
    }

    /// Releases `mutex` on `host`, forwarding it fairly if contended.
    pub fn unlock(&self, tx: &dyn Transport, mutex: usize, host: usize) -> ArmciResult<()> {
        self.check_args(mutex, host)?;
        if !self.held.borrow_mut().remove(&(mutex, host)) {
            return Err(ArmciError::MutexMisuse(format!(
                "unlock of mutex {mutex}@{host} that is not held"
            )));
        }
        let nproc = self.comm.size();
        let me = self.comm.rank();
        let base = mutex * nproc;

        // One exclusive context: B[me] = 0, fetch all other entries
        // (closed unconditionally, as in `lock`).
        let mut before = vec![0u8; me];
        let mut after = vec![0u8; nproc - me - 1];
        tx.atomic_epoch_begin(&self.win, host, LockMode::Exclusive)?;
        let res: mpisim::MpiResult<()> = (|| {
            tx.put_bytes(&self.win, &[0], host, base + me)?;
            if !before.is_empty() {
                tx.get_bytes(&self.win, &mut before, host, base)?;
            }
            if !after.is_empty() {
                tx.get_bytes(&self.win, &mut after, host, base + me + 1)?;
            }
            Ok(())
        })();
        let end = tx.atomic_epoch_end(&self.win, host);
        res.map_err(ArmciError::from)?;
        end?;

        // Reassemble B without our own slot and scan from me+1, wrapping —
        // the fairness order of the paper.
        let waiter = (1..nproc).map(|d| (me + d) % nproc).find(|&r| {
            let v = if r < me { before[r] } else { after[r - me - 1] };
            v != 0
        });
        if let Some(next) = waiter {
            // Zero-byte handoff notification.
            self.comm.send(next, mutex as i32, &[]);
        }
        Ok(())
    }

    /// Collectively destroys the set. All held mutexes must have been
    /// released.
    pub fn destroy(self) -> ArmciResult<()> {
        if !self.held.borrow().is_empty() {
            return Err(ArmciError::MutexMisuse(
                "destroying mutex set while holding mutexes".into(),
            ));
        }
        self.win.free()?;
        Ok(())
    }
}

impl ArmciMpi {
    pub(crate) fn create_mutexes_impl(&self, count: usize) -> ArmciResult<usize> {
        let set = MutexSet::create(&self.world, count, self.progress_model()?);
        let handle = self.next_mutex_handle.get();
        self.next_mutex_handle.set(handle + 1);
        self.user_mutexes.borrow_mut().insert(handle, set);
        Ok(handle)
    }

    pub(crate) fn lock_mutex_impl(
        &self,
        handle: usize,
        mutex: usize,
        proc: usize,
    ) -> ArmciResult<()> {
        let sets = self.user_mutexes.borrow();
        let set = sets
            .get(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown mutex handle {handle}")))?;
        self.stat(|s| s.mutex_locks += 1);
        set.lock(self.tx(), mutex, proc)
    }

    pub(crate) fn unlock_mutex_impl(
        &self,
        handle: usize,
        mutex: usize,
        proc: usize,
    ) -> ArmciResult<()> {
        let sets = self.user_mutexes.borrow();
        let set = sets
            .get(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown mutex handle {handle}")))?;
        set.unlock(self.tx(), mutex, proc)
    }

    pub(crate) fn destroy_mutexes_impl(&self, handle: usize) -> ArmciResult<()> {
        let set = self
            .user_mutexes
            .borrow_mut()
            .remove(&handle)
            .ok_or_else(|| ArmciError::MutexMisuse(format!("unknown mutex handle {handle}")))?;
        set.destroy()
    }
}

use crate::ArmciMpi;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{EpochStyle, MpiRmaTransport, Transport};
    use mpisim::dtype::Datatype;
    use mpisim::mpi3::{FetchOp, RmaRequest};
    use mpisim::{
        AccOp, ElemType, MpiError, MpiResult, Proc, RmaClass, Runtime, RuntimeConfig, WinHandle,
    };

    /// A wire backend whose bulk transfers work but whose byte-protocol
    /// gets fail mid-sequence — the "backend lost during the lock
    /// protocol" scenario.
    struct FailingGets {
        inner: MpiRmaTransport,
    }

    impl Transport for FailingGets {
        fn name(&self) -> &'static str {
            "failing-gets"
        }
        fn epoch_style(&self) -> EpochStyle {
            self.inner.epoch_style()
        }
        fn attach(&self, win: &WinHandle) -> MpiResult<()> {
            self.inner.attach(win)
        }
        fn detach(&self, win: &WinHandle) -> MpiResult<()> {
            self.inner.detach(win)
        }
        fn epoch_begin(&self, win: &WinHandle, target: usize, mode: LockMode) -> MpiResult<()> {
            self.inner.epoch_begin(win, target, mode)
        }
        fn epoch_end(&self, win: &WinHandle, target: usize) -> MpiResult<()> {
            self.inner.epoch_end(win, target)
        }
        fn put(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
        ) -> MpiResult<()> {
            self.inner.put(win, origin, odt, target, tdisp, tdt)
        }
        fn get(
            &self,
            _win: &WinHandle,
            _origin: &mut [u8],
            _odt: &Datatype,
            _target: usize,
            _tdisp: usize,
            _tdt: &Datatype,
        ) -> MpiResult<()> {
            Err(MpiError::WinFreed)
        }
        #[allow(clippy::too_many_arguments)]
        fn accumulate(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
            elem: ElemType,
            op: AccOp,
        ) -> MpiResult<()> {
            self.inner
                .accumulate(win, origin, odt, target, tdisp, tdt, elem, op)
        }
        fn rput(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
        ) -> MpiResult<mpisim::mpi3::RmaRequest> {
            self.inner.rput(win, origin, odt, target, tdisp, tdt)
        }
        fn rget(
            &self,
            win: &WinHandle,
            origin: &mut [u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
        ) -> MpiResult<RmaRequest> {
            self.inner.rget(win, origin, odt, target, tdisp, tdt)
        }
        #[allow(clippy::too_many_arguments)]
        fn racc(
            &self,
            win: &WinHandle,
            origin: &[u8],
            odt: &Datatype,
            target: usize,
            tdisp: usize,
            tdt: &Datatype,
            elem: ElemType,
            op: AccOp,
        ) -> MpiResult<RmaRequest> {
            self.inner
                .racc(win, origin, odt, target, tdisp, tdt, elem, op)
        }
        fn issue_merged(
            &self,
            win: &WinHandle,
            class: RmaClass,
            target: usize,
            segs: &[(usize, usize)],
        ) -> MpiResult<f64> {
            self.inner.issue_merged(win, class, target, segs)
        }
        fn fetch_and_op_i64(
            &self,
            win: &WinHandle,
            operand: i64,
            target: usize,
            tdisp: usize,
            op: FetchOp,
        ) -> MpiResult<i64> {
            self.inner.fetch_and_op_i64(win, operand, target, tdisp, op)
        }
    }

    #[test]
    fn backend_loss_mid_lock_surfaces_and_releases_epoch() {
        // A transfer failure inside the lock protocol's exclusive context
        // must (a) surface as an error, (b) leave the held-set clean, and
        // (c) release the window lock so a retry over a working backend
        // can acquire — no wedged host.
        let cfg = RuntimeConfig {
            charge_time: false,
            ..Default::default()
        };
        Runtime::run_with(2, cfg, |p: &Proc| {
            let world = p.world();
            let set = MutexSet::create(&world, 1, mpisim::ProgressModel::Off);
            if p.rank() == 0 {
                let bad = FailingGets {
                    inner: MpiRmaTransport { epochless: false },
                };
                let err = set.lock(&bad, 0, 0);
                assert!(err.is_err(), "mid-lock transfer failure must surface");
                assert!(
                    set.held.borrow().is_empty(),
                    "failed lock must not record the mutex as held"
                );
                let err = set.lock(&bad, 0, 1);
                assert!(err.is_err(), "remote-host failure must surface too");
                // Retry over a working backend: if the failed attempts had
                // leaked their exclusive epochs, these locks would error
                // (self-nested lock) instead of acquiring.
                let good = MpiRmaTransport { epochless: false };
                set.lock(&good, 0, 0).unwrap();
                set.unlock(&good, 0, 0).unwrap();
            }
            world.barrier();
            set.destroy().unwrap();
        });
    }
}
