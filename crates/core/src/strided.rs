//! Strided operations (§VI-C).
//!
//! Two implementation strategies, selected by [`crate::Config::strided`]:
//!
//! * **IOV translation** — Algorithm 1 (as the [`armci::StridedIter`]
//!   iterator) expands the strided descriptor into a generalized I/O
//!   vector, which is then transferred with any of the §VI-A methods;
//! * **direct** — the strided notation is translated *backwards* into MPI
//!   subarray datatypes for both the origin and the target, and a single
//!   RMA operation hands the whole transfer to the MPI layer. When the
//!   strides do not describe a dense array (non-divisible strides) the
//!   implementation silently falls back to the IOV-datatype path.
//!
//! Both strategies produce [`crate::engine`] transfer plans; the blocking
//! entry points run them immediately while the nonblocking entry points
//! hand them to the coalescing scheduler (DESIGN §7), so
//! `ARMCI_NbPutS`-style patch transfers overlap with computation — and
//! same-target trains of them merge into coarsened epochs — exactly like
//! their contiguous counterparts. Direct-datatype transfers of a
//! repeated shape hit the window's committed-datatype cache instead of
//! rebuilding subarray types per call.

use crate::engine::{ExecBuf, TransferPlan};
use crate::ops::OpClass;
use crate::ArmciMpi;
use armci::stride::{total_bytes, validate, StridedIter};
use armci::{
    strided_to_subarray, AccKind, ArmciResult, GlobalAddr, IovDesc, NbHandle, StridedMethod,
};
use simnet::PoolBuf;

impl ArmciMpi {
    /// Builds the IOV descriptor for a strided transfer where the remote
    /// side is `remote` with `remote_strides` and the local side uses
    /// `local_strides`.
    fn strided_to_iov(
        remote: GlobalAddr,
        remote_strides: &[usize],
        local_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<IovDesc> {
        let mut local_offsets = Vec::new();
        let mut remote_addrs = Vec::new();
        for (rdisp, ldisp) in StridedIter::new(remote_strides, local_strides, count)? {
            remote_addrs.push(remote.addr + rdisp);
            local_offsets.push(ldisp);
        }
        Ok(IovDesc {
            rank: remote.rank,
            bytes: count[0],
            local_offsets,
            remote_addrs,
        })
    }

    /// Plans a strided put: direct subarray datatypes when configured and
    /// expressible, IOV translation otherwise.
    fn plan_put_strided(
        &self,
        src_len: usize,
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<Vec<TransferPlan>> {
        if self.cfg.strided == StridedMethod::Direct {
            if let Some(plan) = self.plan_strided_direct(
                OpClass::Put,
                src_len,
                src_strides,
                dst,
                dst_strides,
                count,
            )? {
                return Ok(vec![plan]);
            }
            // fall back to the datatype IOV path
            let desc = Self::strided_to_iov(dst, dst_strides, src_strides, count)?;
            self.check_local(&desc, src_len)?;
            return self.plan_iov(&desc, OpClass::Put, false, StridedMethod::IovDatatype);
        }
        let desc = Self::strided_to_iov(dst, dst_strides, src_strides, count)?;
        self.check_local(&desc, src_len)?;
        self.plan_iov(&desc, OpClass::Put, false, self.cfg.strided)
    }

    /// Plans a strided get (local side is the destination).
    fn plan_get_strided(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst_len: usize,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<Vec<TransferPlan>> {
        if self.cfg.strided == StridedMethod::Direct {
            if let Some(plan) = self.plan_strided_direct(
                OpClass::Get,
                dst_len,
                dst_strides,
                src,
                src_strides,
                count,
            )? {
                return Ok(vec![plan]);
            }
            let desc = Self::strided_to_iov(src, src_strides, dst_strides, count)?;
            self.check_local(&desc, dst_len)?;
            return self.plan_iov(&desc, OpClass::Get, false, StridedMethod::IovDatatype);
        }
        let desc = Self::strided_to_iov(src, src_strides, dst_strides, count)?;
        self.check_local(&desc, dst_len)?;
        self.plan_iov(&desc, OpClass::Get, false, self.cfg.strided)
    }

    /// Plans a strided accumulate and stages its pre-scaled source. The
    /// direct path gathers the origin segments into a contiguous staging
    /// buffer (the pack an MPI implementation would do anyway) and pairs
    /// it with the target subarray type in one operation.
    fn plan_acc_strided(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<(Vec<TransferPlan>, PoolBuf)> {
        kind.check_len(count[0])?;
        if self.cfg.strided == StridedMethod::Direct
            && strided_to_subarray(dst_strides, count).is_some()
        {
            // Gather the origin segments into pooled scratch (the pack an
            // MPI implementation would do anyway), then scale in place.
            let total = total_bytes(count);
            let mut staged = self.scratch(total);
            let mut w = 0usize;
            for (sdisp, _) in StridedIter::new(src_strides, dst_strides, count)? {
                staged[w..w + count[0]].copy_from_slice(&src[sdisp..sdisp + count[0]]);
                w += count[0];
            }
            kind.scale_in_place(&mut staged)?;
            self.charge(self.copy_cost(total));
            let plan = self.plan_strided_direct_acc(dst, dst_strides, count, staged.len())?;
            self.stage_touch(plan.gmr, staged.len());
            return Ok((vec![plan], staged));
        }
        let method = if self.cfg.strided == StridedMethod::Direct {
            StridedMethod::IovDatatype
        } else {
            self.cfg.strided
        };
        let desc = Self::strided_to_iov(dst, dst_strides, src_strides, count)?;
        self.check_local(&desc, src.len())?;
        let staged = self.stage_iov_acc(kind, &desc, src)?;
        let plans = self.plan_iov(&desc, OpClass::Acc, true, method)?;
        if let Some(p) = plans.first() {
            self.stage_touch(p.gmr, staged.len());
        }
        Ok((plans, staged))
    }

    pub(crate) fn put_strided_impl(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let plans = self.plan_put_strided(src.len(), src_strides, dst, dst_strides, count)?;
        self.run_plans(&plans, &ExecBuf::Put(src.as_ptr(), src.len()))
    }

    pub(crate) fn get_strided_impl(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let plans = self.plan_get_strided(src, src_strides, dst.len(), dst_strides, count)?;
        self.run_plans(&plans, &ExecBuf::Get(dst.as_mut_ptr(), dst.len()))
    }

    pub(crate) fn acc_strided_impl(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let (plans, staged) =
            self.plan_acc_strided(kind, src, src_strides, dst, dst_strides, count)?;
        self.run_plans(&plans, &ExecBuf::Acc(&staged, kind.mpi_elem()))
    }

    /// Nonblocking strided put (`ARMCI_NbPutS`): same planning as the
    /// blocking path, executed through the request-based engine path.
    pub(crate) fn nb_put_strided_impl(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let plans = self.plan_put_strided(src.len(), src_strides, dst, dst_strides, count)?;
        self.nb_run_plans(plans, &ExecBuf::Put(src.as_ptr(), src.len()))
    }

    /// Nonblocking strided get (`ARMCI_NbGetS`). The simulator moves bytes
    /// at issue time, so `dst` is filled on return — only the virtual-time
    /// completion is deferred to `wait`.
    pub(crate) fn nb_get_strided_impl(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let plans = self.plan_get_strided(src, src_strides, dst.len(), dst_strides, count)?;
        self.nb_run_plans(plans, &ExecBuf::Get(dst.as_mut_ptr(), dst.len()))
    }

    /// Nonblocking strided accumulate (`ARMCI_NbAccS`).
    pub(crate) fn nb_acc_strided_impl(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<NbHandle> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        let (plans, staged) =
            self.plan_acc_strided(kind, src, src_strides, dst, dst_strides, count)?;
        self.nb_run_plans(plans, &ExecBuf::Acc(&staged, kind.mpi_elem()))
    }
}
