//! Strided operations (§VI-C).
//!
//! Two implementation strategies, selected by [`crate::Config::strided`]:
//!
//! * **IOV translation** — Algorithm 1 (as the [`armci::StridedIter`]
//!   iterator) expands the strided descriptor into a generalized I/O
//!   vector, which is then transferred with any of the §VI-A methods;
//! * **direct** — the strided notation is translated *backwards* into MPI
//!   subarray datatypes for both the origin and the target, and a single
//!   RMA operation hands the whole transfer to the MPI layer. When the
//!   strides do not describe a dense array (non-divisible strides) the
//!   implementation silently falls back to the IOV-datatype path.

use crate::ops::OpClass;
use crate::ArmciMpi;
use armci::stride::{extent, total_bytes, validate, StridedIter};
use armci::{
    strided_to_subarray, AccKind, ArmciError, ArmciResult, GlobalAddr, IovDesc, StridedMethod,
};
use mpisim::{AccOp, Datatype};

impl ArmciMpi {
    /// Builds the IOV descriptor for a strided transfer where the remote
    /// side is `remote` with `remote_strides` and the local side uses
    /// `local_strides`.
    fn strided_to_iov(
        remote: GlobalAddr,
        remote_strides: &[usize],
        local_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<IovDesc> {
        let mut local_offsets = Vec::new();
        let mut remote_addrs = Vec::new();
        for (rdisp, ldisp) in StridedIter::new(remote_strides, local_strides, count)? {
            remote_addrs.push(remote.addr + rdisp);
            local_offsets.push(ldisp);
        }
        Ok(IovDesc {
            rank: remote.rank,
            bytes: count[0],
            local_offsets,
            remote_addrs,
        })
    }

    pub(crate) fn put_strided_impl(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        if self.cfg.strided == StridedMethod::Direct {
            if self.put_strided_direct(src, src_strides, dst, dst_strides, count)? {
                return Ok(());
            }
            // fall back to the datatype IOV path
            let desc = Self::strided_to_iov(dst, dst_strides, src_strides, count)?;
            return self.put_iov_impl(&desc, src, StridedMethod::IovDatatype);
        }
        let desc = Self::strided_to_iov(dst, dst_strides, src_strides, count)?;
        self.put_iov_impl(&desc, src, self.cfg.strided)
    }

    pub(crate) fn get_strided_impl(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        if self.cfg.strided == StridedMethod::Direct {
            if self.get_strided_direct(src, src_strides, dst, dst_strides, count)? {
                return Ok(());
            }
            let desc = Self::strided_to_iov(src, src_strides, dst_strides, count)?;
            return self.get_iov_impl(&desc, dst, StridedMethod::IovDatatype);
        }
        let desc = Self::strided_to_iov(src, src_strides, dst_strides, count)?;
        self.get_iov_impl(&desc, dst, self.cfg.strided)
    }

    pub(crate) fn acc_strided_impl(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<()> {
        validate(src_strides, count)?;
        validate(dst_strides, count)?;
        kind.check_len(count[0])?;
        if self.cfg.strided == StridedMethod::Direct {
            if self.acc_strided_direct(kind, src, src_strides, dst, dst_strides, count)? {
                return Ok(());
            }
            let desc = Self::strided_to_iov(dst, dst_strides, src_strides, count)?;
            return self.acc_iov_impl(kind, &desc, src, StridedMethod::IovDatatype);
        }
        let desc = Self::strided_to_iov(dst, dst_strides, src_strides, count)?;
        self.acc_iov_impl(kind, &desc, src, self.cfg.strided)
    }

    /// Direct subarray-datatype put. Returns `Ok(false)` when the shape
    /// cannot be expressed as subarrays (caller falls back).
    fn put_strided_direct(
        &self,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<bool> {
        let (Some(odt), Some(tdt)) = (
            strided_to_subarray(src_strides, count),
            strided_to_subarray(dst_strides, count),
        ) else {
            return Ok(false);
        };
        if odt.extent() > src.len() {
            return Err(ArmciError::BadDescriptor(format!(
                "strided origin extent {} exceeds buffer {}",
                odt.extent(),
                src.len()
            )));
        }
        let tr = self.translate(dst, extent(dst_strides, count))?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&tr.gmr).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), OpClass::Put);
        self.epoch_begin(gmr, tr.group_rank, mode)?;
        let res = gmr.win.put(src, &odt, tr.group_rank, tr.disp, &tdt);
        self.epoch_end(gmr, tr.group_rank)?;
        res?;
        self.stat(|s| {
            s.puts += 1;
            s.bytes_put += total_bytes(count) as u64;
        });
        Ok(true)
    }

    /// Direct subarray-datatype get.
    fn get_strided_direct(
        &self,
        src: GlobalAddr,
        src_strides: &[usize],
        dst: &mut [u8],
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<bool> {
        let (Some(odt), Some(tdt)) = (
            strided_to_subarray(dst_strides, count),
            strided_to_subarray(src_strides, count),
        ) else {
            return Ok(false);
        };
        if odt.extent() > dst.len() {
            return Err(ArmciError::BadDescriptor(format!(
                "strided origin extent {} exceeds buffer {}",
                odt.extent(),
                dst.len()
            )));
        }
        let tr = self.translate(src, extent(src_strides, count))?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&tr.gmr).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), OpClass::Get);
        self.epoch_begin(gmr, tr.group_rank, mode)?;
        let res = gmr.win.get(dst, &odt, tr.group_rank, tr.disp, &tdt);
        self.epoch_end(gmr, tr.group_rank)?;
        res?;
        self.stat(|s| {
            s.gets += 1;
            s.bytes_got += total_bytes(count) as u64;
        });
        Ok(true)
    }

    /// Direct strided accumulate: the origin segments are gathered and
    /// pre-scaled into a contiguous staging buffer (the pack an MPI
    /// implementation would do anyway), then accumulated through the
    /// target subarray type in one operation.
    fn acc_strided_direct(
        &self,
        kind: AccKind,
        src: &[u8],
        src_strides: &[usize],
        dst: GlobalAddr,
        dst_strides: &[usize],
        count: &[usize],
    ) -> ArmciResult<bool> {
        let Some(tdt) = strided_to_subarray(dst_strides, count) else {
            return Ok(false);
        };
        let total = total_bytes(count);
        let mut gathered = Vec::with_capacity(total);
        for (sdisp, _) in StridedIter::new(src_strides, dst_strides, count)? {
            gathered.extend_from_slice(&src[sdisp..sdisp + count[0]]);
        }
        let staged = kind.prescale(&gathered)?;
        self.charge(self.copy_cost(total));
        let tr = self.translate(dst, extent(dst_strides, count))?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&tr.gmr).expect("translated GMR must exist");
        let mode = self.lock_mode_for(gmr.mode.get(), OpClass::Acc);
        self.epoch_begin(gmr, tr.group_rank, mode)?;
        let res = gmr.win.accumulate(
            &staged,
            &Datatype::contiguous(staged.len()),
            tr.group_rank,
            tr.disp,
            &tdt,
            kind.mpi_elem(),
            AccOp::Sum,
        );
        self.epoch_end(gmr, tr.group_rank)?;
        res?;
        self.stat(|s| {
            s.accs += 1;
            s.bytes_acc += total as u64;
        });
        Ok(true)
    }
}
