//! Global memory regions (§V-A, §V-B).
//!
//! A GMR records everything needed to access one `ARMCI_Malloc` allocation:
//! the MPI window, the group it was allocated on, and the per-member base
//! addresses. The **translation table** maps `⟨process, address⟩` pairs to
//! GMR handles; it is consulted on every communication call.

use crate::mutex::MutexSet;
use crate::{bad_address, ArmciMpi};
use armci::{AccessMode, ArmciError, ArmciGroup, ArmciResult, GlobalAddr, IntervalMap};
use mpisim::WinHandle;
use std::cell::Cell;

/// One global allocation.
pub(crate) struct Gmr {
    /// Window id doubles as the GMR id (consistent across processes).
    pub id: u64,
    pub win: WinHandle,
    pub group: ArmciGroup,
    /// Base address per group rank (`0` = NULL for zero-size slices).
    pub bases: Vec<usize>,
    /// Slice size per group rank.
    #[allow(dead_code)]
    pub sizes: Vec<usize>,
    /// Current access-mode hint (§VIII-A).
    pub mode: Cell<AccessMode>,
    /// Per-GMR mutex set used by the RMW protocol (§V-D): one mutex per
    /// group member, hosted on that member.
    pub rmw_mutexes: MutexSet,
}

/// Builds a `GmrVanished` error, routing it through the recorder first:
/// release builds that swallow the `Result` (or lose it across an FFI-ish
/// boundary) still leave an `error` event carrying the offending GMR id
/// in the trace. The error itself comes from the single
/// [`ArmciError::backing_lost`] funnel shared with the shm fast path.
pub(crate) fn gmr_vanished(gmr: u64) -> ArmciError {
    obs::instant(obs::EventKind::Error {
        what: "gmr_vanished",
        gmr,
    });
    ArmciError::backing_lost(gmr, None)
}

/// Result of translating a global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Translation {
    /// GMR (window) id.
    pub gmr: u64,
    /// Target's rank within the window's group.
    pub group_rank: usize,
    /// Byte displacement within the target's window slice.
    pub disp: usize,
}

/// Address-range index over the shared [`IntervalMap`]: per absolute
/// rank, a base-address ordered interval map of `base → (size, gmr id)`.
/// Every communication call consults this table, so containment lookup
/// is `O(log n)` in the number of live allocations on the target rank.
pub(crate) struct GmrTable {
    map: IntervalMap<u64>,
}

impl GmrTable {
    pub fn new() -> GmrTable {
        GmrTable {
            map: IntervalMap::new(),
        }
    }

    /// Registers an allocation slice.
    pub fn insert(&mut self, rank: usize, base: usize, size: usize, gmr: u64) {
        self.map.insert(rank, base, size, gmr);
    }

    /// Unregisters a slice.
    pub fn remove(&mut self, rank: usize, base: usize) {
        self.map.remove(rank, base);
    }

    /// Finds the allocation containing `[addr, addr+len)` on `rank`.
    pub fn lookup(&self, rank: usize, addr: usize, len: usize) -> Option<(u64, usize, usize)> {
        self.map
            .lookup(rank, addr, len)
            .map(|f| (f.value, f.base, f.size))
    }

    /// Number of registered slices (diagnostics).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

impl ArmciMpi {
    /// Translates a global address to `(gmr, window rank, displacement)`;
    /// `len` bytes starting at the address must fit in the allocation.
    pub(crate) fn translate(&self, addr: GlobalAddr, len: usize) -> ArmciResult<Translation> {
        if addr.is_null() {
            return Err(bad_address(addr));
        }
        let table = self.table.borrow();
        let (gmr_id, base, size) = table.lookup(addr.rank, addr.addr, len).ok_or_else(|| {
            match table.lookup(addr.rank, addr.addr, 1) {
                // base found but range too long → precise bounds error
                Some((_, b, s)) => ArmciError::OutOfBounds {
                    rank: addr.rank,
                    addr: addr.addr,
                    len,
                    limit: b + s,
                },
                None => bad_address(addr),
            }
        })?;
        let _ = size;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&gmr_id).ok_or_else(|| bad_address(addr))?;
        let group_rank = gmr
            .group
            .group_rank_of(addr.rank)
            .ok_or(ArmciError::NotInGroup)?;
        Ok(Translation {
            gmr: gmr_id,
            group_rank,
            disp: addr.addr - base,
        })
    }

    /// `ARMCI_Malloc` (§V-B): creates the window, exchanges base
    /// addresses, and registers the GMR.
    pub(crate) fn malloc_impl(
        &self,
        bytes: usize,
        group: &ArmciGroup,
    ) -> ArmciResult<Vec<GlobalAddr>> {
        let comm = group.comm();
        // My base address: allocated from the local cursor; NULL for
        // zero-size requests.
        let base = if bytes > 0 {
            let b = self.next_addr.get();
            // keep allocations 64-byte aligned
            self.next_addr.set(b + bytes.div_ceil(64) * 64 + 64);
            b
        } else {
            0
        };
        // Node-aware allocation: with the shm subsystem on, the window is
        // backed by one slab per node (carved in window-rank order), which
        // is what gives node peers real base pointers. Off, each rank owns
        // private window memory and every target is wire-remote.
        let win = if self.cfg.shm {
            WinHandle::allocate_shared(comm, bytes)
        } else {
            WinHandle::create(comm, bytes)
        };
        // Progress discipline resolves against the wire backend once per
        // window; `Agent` on a backend that cannot route through one
        // fails the allocation instead of running agentless.
        let progress = self.progress_model()?;
        win.set_progress_model(progress);
        let gmr_id = win.id();
        // All-to-all exchange of local base addresses (§V-B).
        let all = comm.allgather_u64s(&[base as u64, bytes as u64]);
        let mut bases = Vec::with_capacity(all.len());
        let mut sizes = Vec::with_capacity(all.len());
        for b in &all {
            bases.push(b[0] as usize);
            sizes.push(b[1] as usize);
        }
        // Register every non-NULL slice in the translation table.
        {
            let mut table = self.table.borrow_mut();
            for (gr, (&b, &s)) in bases.iter().zip(&sizes).enumerate() {
                if b != 0 {
                    let abs = group.absolute_id(gr)?;
                    table.insert(abs, b, s, gmr_id);
                }
            }
        }
        // Window-lifetime transport setup (the epochless backend's
        // standing `lock_all`; a no-op elsewhere).
        self.tx().attach(&win)?;
        let rmw_mutexes = MutexSet::create(comm, 1, progress);
        self.gmrs.borrow_mut().insert(
            gmr_id,
            Gmr {
                id: gmr_id,
                win,
                group: group.clone(),
                bases: bases.clone(),
                sizes,
                mode: Cell::new(AccessMode::Standard),
                rmw_mutexes,
            },
        );
        if obs::enabled() {
            obs::instant_at(
                obs::EventKind::GmrCreate {
                    gmr: gmr_id,
                    bytes: bytes as u64,
                },
                self.vnow(),
            );
        }
        // Base address vector indexed by group rank.
        let mut out = Vec::with_capacity(bases.len());
        for (gr, &b) in bases.iter().enumerate() {
            out.push(if b == 0 {
                GlobalAddr::NULL
            } else {
                GlobalAddr::new(group.absolute_id(gr)?, b)
            });
        }
        Ok(out)
    }

    /// Locates the GMR for a collective call where some members may hold
    /// NULL: leader election by MAXLOC reduction on group rank, then the
    /// leader broadcasts its base address (§V-B).
    pub(crate) fn locate_collective(
        &self,
        addr: GlobalAddr,
        group: &ArmciGroup,
    ) -> ArmciResult<u64> {
        let comm = group.comm();
        let my_vote = if addr.is_null() {
            -1
        } else {
            group.rank() as i64
        };
        let (winner_vote, leader) = comm.maxloc_i64(my_vote);
        if winner_vote < 0 {
            return Err(ArmciError::BadDescriptor(
                "collective free/mode-change with all-NULL addresses".into(),
            ));
        }
        let payload = if group.rank() == leader {
            Some(addr.addr as u64)
        } else {
            None
        };
        let leader_addr = comm.bcast_u64(leader, payload) as usize;
        let leader_abs = group.absolute_id(leader)?;
        let tr = self.translate(GlobalAddr::new(leader_abs, leader_addr), 1)?;
        Ok(tr.gmr)
    }

    /// `ARMCI_Free` (§V-B).
    pub(crate) fn free_impl(&self, addr: GlobalAddr, group: &ArmciGroup) -> ArmciResult<()> {
        let gmr_id = self.locate_collective(addr, group)?;
        let gmr = self
            .gmrs
            .borrow_mut()
            .remove(&gmr_id)
            .ok_or_else(|| bad_address(addr))?;
        {
            let mut table = self.table.borrow_mut();
            for (gr, &b) in gmr.bases.iter().enumerate() {
                if b != 0 {
                    let abs = gmr.group.absolute_id(gr)?;
                    table.remove(abs, b);
                }
            }
        }
        gmr.rmw_mutexes.destroy()?;
        self.tx().detach(&gmr.win)?;
        // Preserve the window's committed-datatype cache counters past its
        // destruction: stage-stat snapshots fold live windows + retired.
        let (hits, misses, _) = gmr.win.dtype_cache_stats();
        let (rh, rm) = self.dtype_retired.get();
        self.dtype_retired.set((rh + hits, rm + misses));
        gmr.win.free()?;
        if obs::enabled() {
            obs::instant_at(obs::EventKind::GmrFree { gmr: gmr_id }, self.vnow());
        }
        Ok(())
    }

    /// Access-mode hint change (§VIII-A): collective over the group.
    pub(crate) fn set_access_mode_impl(
        &self,
        addr: GlobalAddr,
        group: &ArmciGroup,
        mode: AccessMode,
    ) -> ArmciResult<()> {
        let gmr_id = self.locate_collective(addr, group)?;
        let gmrs = self.gmrs.borrow();
        let gmr = gmrs.get(&gmr_id).ok_or_else(|| bad_address(addr))?;
        // Mode transitions must quiesce outstanding operations.
        gmr.group.barrier();
        gmr.mode.set(mode);
        gmr.group.barrier();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup_finds_containing_allocation() {
        let mut t = GmrTable::new();
        t.insert(2, 0x1000, 256, 7);
        t.insert(2, 0x2000, 128, 8);
        // inside the first allocation
        assert_eq!(t.lookup(2, 0x1000, 1), Some((7, 0x1000, 256)));
        assert_eq!(t.lookup(2, 0x10ff, 1), Some((7, 0x1000, 256)));
        // range crossing the end fails
        assert_eq!(t.lookup(2, 0x10f0, 32), None);
        // the second allocation
        assert_eq!(t.lookup(2, 0x2040, 64), Some((8, 0x2000, 128)));
        // gap between allocations
        assert_eq!(t.lookup(2, 0x1a00, 1), None);
        // unknown rank
        assert_eq!(t.lookup(3, 0x1000, 1), None);
    }

    #[test]
    fn table_zero_length_lookup_requires_one_byte() {
        let mut t = GmrTable::new();
        t.insert(0, 0x100, 16, 1);
        // len 0 is treated as len 1 (an address must be inside)
        assert_eq!(t.lookup(0, 0x10f, 0), Some((1, 0x100, 16)));
        assert_eq!(t.lookup(0, 0x110, 0), None);
    }

    #[test]
    fn table_remove_unregisters_only_that_slice() {
        let mut t = GmrTable::new();
        t.insert(1, 0x100, 16, 1);
        t.insert(1, 0x200, 16, 2);
        assert_eq!(t.len(), 2);
        t.remove(1, 0x100);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(1, 0x100, 1), None);
        assert_eq!(t.lookup(1, 0x200, 1), Some((2, 0x200, 16)));
        // removing a non-existent base is a no-op
        t.remove(9, 0xdead);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_adjacent_allocations_do_not_bleed() {
        let mut t = GmrTable::new();
        t.insert(0, 0x100, 0x100, 1);
        t.insert(0, 0x200, 0x100, 2);
        assert_eq!(t.lookup(0, 0x1ff, 1), Some((1, 0x100, 0x100)));
        assert_eq!(t.lookup(0, 0x200, 1), Some((2, 0x200, 0x100)));
        // a range spanning both fails (IOV "spans multiple GMRs")
        assert_eq!(t.lookup(0, 0x1f0, 0x20), None);
    }
}
