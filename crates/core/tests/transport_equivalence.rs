//! Wire-backend equivalence: the RAMC-style channel transport must be
//! observationally identical to MPI passive-target RMA — byte-identical
//! remote memory, get results, and RMW return values — over random rank
//! layouts and operation mixes. Payload correctness is a property of the
//! ARMCI layer, not of the backend; only cost and offload accounting may
//! differ.

use armci::{AccKind, Armci, RmwOp};
use armci_mpi::{ArmciMpi, Config, TransportKind};
use mpisim::{Runtime, RuntimeConfig};
use proptest::prelude::*;
use simnet::{Platform, PlatformId};

/// Runtime with `ranks_per_node` cores per node and no clock charging,
/// so layouts range from everything-on-one-node to one-rank-per-node.
fn layout(ranks_per_node: u32) -> RuntimeConfig {
    let mut platform =
        Platform::get(PlatformId::InfiniBandCluster).customized("transport-equivalence-test");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = ranks_per_node;
    RuntimeConfig {
        platform,
        charge_time: false,
        ..Default::default()
    }
}

fn tx_cfg(transport: TransportKind) -> Config {
    Config {
        transport,
        ..Default::default()
    }
}

/// One random operation: `(kind, target, slot, len, seed)`. Kinds 0–2
/// are blocking put/get/acc; 3–5 their nonblocking forms; 6–7 strided
/// put/get (noncontiguous — the channel backend's software fallback);
/// 8 is an RMW fetch-and-add. Slots are 8-byte units inside each rank's
/// 256-byte region.
type MixOp = (u8, usize, usize, usize, u8);

fn arb_ops() -> impl Strategy<Value = Vec<MixOp>> {
    proptest::collection::vec((0u8..9, 1usize..4, 0usize..24, 1usize..6, 0u8..200), 1..14)
}

/// Replays an op mix from rank 0 over four ranks; returns the final
/// images of ranks 1–3, the concatenated get results, and the RMW
/// return values.
fn run_mix(
    ranks_per_node: u32,
    transport: TransportKind,
    ops: Vec<MixOp>,
) -> (Vec<u8>, Vec<u8>, Vec<i64>) {
    Runtime::run_with(4, layout(ranks_per_node), move |p| {
        let rt = ArmciMpi::with_config(p, tx_cfg(transport));
        let bases = rt.malloc(256).unwrap();
        rt.barrier();
        let mut out = (Vec::new(), Vec::new(), Vec::new());
        if p.rank() == 0 {
            let mut handles = Vec::new();
            let mut gets: Vec<Vec<u8>> = Vec::new();
            let mut rmws: Vec<i64> = Vec::new();
            for &(kind, target, slot, len, seed) in &ops {
                let addr = bases[target].offset(slot * 8);
                let bytes = len * 8;
                match kind {
                    0 | 3 => {
                        let payload: Vec<u8> = (0..bytes)
                            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
                            .collect();
                        if kind == 0 {
                            rt.put(&payload, addr).unwrap();
                        } else {
                            handles.push(rt.nb_put(&payload, addr).unwrap());
                        }
                    }
                    1 | 4 => {
                        let mut buf = vec![0u8; bytes];
                        if kind == 1 {
                            rt.get(addr, &mut buf).unwrap();
                        } else {
                            handles.push(rt.nb_get(addr, &mut buf).unwrap());
                        }
                        gets.push(buf);
                    }
                    2 | 5 => {
                        let raw: Vec<u8> = std::iter::repeat_n(f64::from(seed).to_le_bytes(), len)
                            .flatten()
                            .collect();
                        if kind == 2 {
                            rt.acc(AccKind::Double(1.0), &raw, addr).unwrap();
                        } else {
                            handles.push(rt.nb_acc(AccKind::Double(1.0), &raw, addr).unwrap());
                        }
                    }
                    6 | 7 => {
                        // Strided 2-D transfer: 8-byte runs every 16 bytes,
                        // bounded inside the 256-byte region. Noncontiguous,
                        // so the channel backend must take its software path.
                        let rows = (len % 3) + 2;
                        let addr = bases[target].offset((slot % 12) * 8);
                        let count = [8usize, rows];
                        if kind == 6 {
                            let src: Vec<u8> = (0..rows * 8)
                                .map(|i| (i as u8).wrapping_mul(29).wrapping_add(seed))
                                .collect();
                            rt.put_strided(&src, &[8], addr, &[16], &count).unwrap();
                        } else {
                            let mut dst = vec![0u8; rows * 8];
                            rt.get_strided(addr, &[16], &mut dst, &[8], &count).unwrap();
                            gets.push(dst);
                        }
                    }
                    _ => {
                        let cell = bases[target].offset((slot % 24) * 8);
                        rmws.push(rt.rmw(RmwOp::FetchAdd(i64::from(seed) + 1), cell).unwrap());
                    }
                }
            }
            rt.wait_all(handles).unwrap();
            let mut images = Vec::new();
            for &base in &bases[1..] {
                let mut image = vec![0u8; 256];
                rt.get(base, &mut image).unwrap();
                images.extend(image);
            }
            out = (images, gets.concat(), rmws);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        out
    })
    .swap_remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any mix of blocking, nonblocking, strided and read-modify-write
    /// operations leaves byte-identical remote memory, get results and
    /// RMW values whether the wire is MPI passive-target RMA or the
    /// RAMC-style channel backend, on every node layout.
    #[test]
    fn channel_backend_equivalent_to_mpi_rma(ops in arb_ops()) {
        for ranks_per_node in [1u32, 2, 4] {
            let mpi = run_mix(ranks_per_node, TransportKind::MpiRma, ops.clone());
            let chan = run_mix(ranks_per_node, TransportKind::Channel, ops.clone());
            prop_assert_eq!(
                &chan, &mpi,
                "backend divergence at {} ranks/node", ranks_per_node
            );
        }
    }
}

#[test]
fn channel_backend_reports_offload_split() {
    // A contiguous put offloads to the channel "hardware"; a strided one
    // falls back to software. The counters must record the split and the
    // backend must identify itself.
    Runtime::run_with(2, layout(1), |p| {
        let rt = ArmciMpi::with_config(p, tx_cfg(TransportKind::Channel));
        assert_eq!(rt.transport_name(), "channel");
        let bases = rt.malloc(256).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put(&[7u8; 64], bases[1]).unwrap();
            rt.put_strided(&[1u8; 24], &[8], bases[1], &[16], &[8, 3])
                .unwrap();
            let s = rt.transport_stats();
            assert!(s.offloaded >= 1, "contiguous put should offload: {s:?}");
            assert!(s.fallback >= 1, "strided put should fall back: {s:?}");
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn mpi_rma_backend_reports_no_offload() {
    Runtime::run_with(2, layout(1), |p| {
        let rt = ArmciMpi::with_config(p, tx_cfg(TransportKind::MpiRma));
        assert_eq!(rt.transport_name(), "mpi-rma");
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put(&[7u8; 32], bases[1]).unwrap();
            let s = rt.transport_stats();
            assert_eq!((s.offloaded, s.fallback), (0, 0));
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn channel_backend_composes_with_shm_tier() {
    // With the node slab on, same-node plans take the load/store tier
    // (which must lock under the channel backend — there is no standing
    // lock_all to make lock-free win_sync legal) while cross-node plans
    // ride the channel. Payloads stay correct on both routes.
    let mut platform =
        Platform::get(PlatformId::InfiniBandCluster).customized("transport-shm-test");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = 2;
    let rc = RuntimeConfig {
        platform,
        charge_time: false,
        ..Default::default()
    };
    Runtime::run_with(4, rc, |p| {
        let cfg = Config {
            transport: TransportKind::Channel,
            shm: true,
            ..Default::default()
        };
        let rt = ArmciMpi::with_config(p, cfg);
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            // target 1 shares the node; targets 2 and 3 do not
            for (t, &base) in bases.iter().enumerate().skip(1) {
                rt.put(&[t as u8; 16], base).unwrap();
                let mut img = [0u8; 16];
                rt.get(base, &mut img).unwrap();
                assert_eq!(img, [t as u8; 16]);
            }
            let g = rt.stage_stats();
            assert!(g.shm_hits >= 1, "node peer should use the slab");
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}
