//! The coalescing RMA scheduler: behavioural equivalence with the
//! per-op path, wire-level op merging and epoch coarsening, §VIII-A
//! access-mode rejection, and the committed-datatype cache.

use armci::{AccKind, AccessMode, Armci, ArmciError, ArmciExt};
use armci_mpi::{ArmciMpi, CoalesceMode, Config};
use mpisim::{Runtime, RuntimeConfig};
use proptest::prelude::*;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn cfg(coalesce: CoalesceMode, epochless: bool) -> Config {
    Config {
        coalesce,
        epochless,
        // These tests assert wire-scheduler internals (sched_* counters,
        // datatype cache hits); the intra-node shared-memory bypass would
        // route every op around the scheduler on the 2-rank single-node
        // layouts used here. shm-on equivalence lives in shm_subsystem.rs.
        shm: false,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// §VIII-A: operations that contradict the access-mode hint are rejected
// ---------------------------------------------------------------------

#[test]
fn put_into_read_only_region_is_rejected() {
    Runtime::run_with(2, quiet(), |p| {
        let rt = ArmciMpi::new(p);
        let world = rt.world_group();
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::ReadOnly)
            .unwrap();
        if p.rank() == 0 {
            let err = rt.put(&[1u8; 8], bases[1]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArmciError::AccessModeViolation {
                        mode: "read-only",
                        op: "put",
                        ..
                    }
                ),
                "unexpected error: {err}"
            );
            let err = rt
                .acc(AccKind::Double(1.0), &[0u8; 8], bases[1])
                .unwrap_err();
            assert!(matches!(
                err,
                ArmciError::AccessModeViolation {
                    mode: "read-only",
                    op: "accumulate",
                    ..
                }
            ));
            // the nonblocking path rejects at plan time too
            assert!(rt.nb_put(&[1u8; 8], bases[1]).is_err());
            // reads are what the hint promises — still fine
            let mut b = [0u8; 8];
            rt.get(bases[1], &mut b).unwrap();
        }
        rt.barrier();
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::Standard)
            .unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn get_from_accumulate_only_region_is_rejected() {
    Runtime::run_with(2, quiet(), |p| {
        let rt = ArmciMpi::new(p);
        let world = rt.world_group();
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::AccumulateOnly)
            .unwrap();
        if p.rank() == 0 {
            let mut b = [0u8; 8];
            let err = rt.get(bases[1], &mut b).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArmciError::AccessModeViolation {
                        mode: "accumulate-only",
                        op: "get",
                        ..
                    }
                ),
                "unexpected error: {err}"
            );
            assert!(rt.put(&[1u8; 8], bases[1]).is_err());
            // accumulates are the promise — still fine
            rt.acc_f64s(1.0, &[1.0], bases[1]).unwrap();
        }
        rt.barrier();
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::Standard)
            .unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

// ---------------------------------------------------------------------
// Wire-level merging and the committed-datatype cache
// ---------------------------------------------------------------------

/// Eight adjacent disjoint nonblocking puts to one target coalesce into
/// one epoch *and* one wire operation (the per-op aggregate epoch already
/// gave one epoch; the scheduler's merge is what removes the other seven
/// wire ops).
#[test]
fn adjacent_puts_merge_into_one_wire_op() {
    Runtime::run_with(2, quiet(), |p| {
        let rt = ArmciMpi::with_config(p, cfg(CoalesceMode::Auto, false));
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let mut hs = Vec::new();
            for i in 0..8usize {
                let payload = [i as u8 + 1; 8];
                hs.push(rt.nb_put(&payload, bases[1].offset(i * 8)).unwrap());
            }
            rt.wait_all(hs).unwrap();
            let st = rt.stats();
            assert_eq!(st.epochs, 1, "one coarsened epoch");
            assert_eq!(st.puts, 1, "eight queued puts, one wire put");
            let g = rt.stage_stats();
            assert_eq!(g.sched_enqueued, 8);
            assert_eq!(g.sched_runs, 1);
            assert_eq!(g.sched_ops_merged(), 7);
            assert_eq!(g.sched_segs_in, 8);
            assert_eq!(g.sched_segs_out, 1, "adjacent segments merged");
        }
        rt.barrier();
        if p.rank() == 1 {
            let mut img = vec![0u8; 64];
            rt.get(bases[1], &mut img).unwrap();
            for i in 0..8usize {
                assert_eq!(&img[i * 8..(i + 1) * 8], &[i as u8 + 1; 8]);
            }
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

/// Repeated same-shape strided transfers hit the committed-datatype
/// cache after the first commit.
#[test]
fn repeated_strided_shape_hits_dtype_cache() {
    Runtime::run_with(2, quiet(), |p| {
        let rt = ArmciMpi::with_config(p, cfg(CoalesceMode::Datatype, true));
        let bases = rt.malloc(8 * 64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            // 8 rows × 8 bytes at stride 64: a non-contiguous shape the
            // merged issue commits as one indexed datatype.
            let local = vec![7u8; 8 * 8];
            for _ in 0..4 {
                let h = rt
                    .nb_put_strided(&local, &[8], bases[1], &[64], &[8, 8])
                    .unwrap();
                rt.wait(h).unwrap();
            }
            let g = rt.stage_stats();
            assert_eq!(g.dtype_misses, 1, "first flush commits the shape");
            assert_eq!(g.dtype_hits, 3, "remaining flushes reuse it");
            assert!(g.dtype_hit_rate() > 0.7);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

// ---------------------------------------------------------------------
// Equivalence: every coalesce mode leaves the same memory as PerOp
// ---------------------------------------------------------------------

/// One random operation: (kind, slot offset, slot length, payload seed).
/// Slots are 8-byte (f64) units inside a 256-byte region.
type MixOp = (u8, usize, usize, u8);

fn arb_ops() -> impl Strategy<Value = Vec<MixOp>> {
    proptest::collection::vec((0u8..3, 0usize..24, 1usize..6, 0u8..200), 1..12)
}

/// Replays a nonblocking op mix under one scheduler mode; returns the
/// final remote image and the concatenated get results.
fn run_mix(coalesce: CoalesceMode, epochless: bool, ops: Vec<MixOp>) -> (Vec<u8>, Vec<u8>) {
    let cfg = cfg(coalesce, epochless);
    Runtime::run_with(2, quiet(), move |p| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        let bases = rt.malloc(256).unwrap();
        rt.barrier();
        let mut out = (Vec::new(), Vec::new());
        if p.rank() == 0 {
            let mut handles = Vec::new();
            let mut gets: Vec<Vec<u8>> = Vec::new();
            for &(kind, off, len, seed) in &ops {
                let addr = bases[1].offset(off * 8);
                let bytes = len * 8;
                match kind {
                    0 => {
                        let payload: Vec<u8> = (0..bytes)
                            .map(|i| (i as u8).wrapping_mul(11).wrapping_add(seed))
                            .collect();
                        handles.push(rt.nb_put(&payload, addr).unwrap());
                    }
                    1 => {
                        let mut buf = vec![0u8; bytes];
                        handles.push(rt.nb_get(addr, &mut buf).unwrap());
                        gets.push(buf);
                    }
                    _ => {
                        let raw: Vec<u8> = std::iter::repeat_n(f64::from(seed).to_le_bytes(), len)
                            .flatten()
                            .collect();
                        handles.push(rt.nb_acc(AccKind::Double(1.0), &raw, addr).unwrap());
                    }
                }
            }
            rt.wait_all(handles).unwrap();
            let mut image = vec![0u8; 256];
            rt.get(bases[1], &mut image).unwrap();
            out = (image, gets.concat());
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        out
    })
    .swap_remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any mix of possibly-overlapping nonblocking puts, gets and
    /// accumulates leaves byte-identical remote memory and get results
    /// under every coalesce mode, in both epoch disciplines.
    #[test]
    fn coalesce_modes_equivalent(ops in arb_ops()) {
        for epochless in [false, true] {
            let reference = run_mix(CoalesceMode::PerOp, epochless, ops.clone());
            for mode in [CoalesceMode::Batched, CoalesceMode::Datatype, CoalesceMode::Auto] {
                let got = run_mix(mode, epochless, ops.clone());
                prop_assert_eq!(&got, &reference, "mode {:?} epochless {}", mode, epochless);
            }
        }
    }
}
