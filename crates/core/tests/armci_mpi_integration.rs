//! End-to-end tests of ARMCI-MPI over the simulated MPI runtime.

use armci::{
    AccKind, AccessMode, Armci, ArmciError, ArmciExt, GlobalAddr, IovDesc, RmwOp, StridedMethod,
};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Proc, Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn run<R: Send>(n: usize, f: impl Fn(&Proc, ArmciMpi) -> R + Send + Sync) -> Vec<R> {
    Runtime::run_with(n, quiet(), move |p| {
        let rt = ArmciMpi::new(p);
        f(p, rt)
    })
}

fn run_cfg<R: Send>(
    n: usize,
    cfg: Config,
    f: impl Fn(&Proc, ArmciMpi) -> R + Send + Sync,
) -> Vec<R> {
    Runtime::run_with(n, quiet(), move |p| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        f(p, rt)
    })
}

// ---------------------------------------------------------------------
// Allocation & translation
// ---------------------------------------------------------------------

#[test]
fn malloc_returns_base_vector_with_real_addresses() {
    run(4, |_, rt| {
        let bases = rt.malloc(256).unwrap();
        assert_eq!(bases.len(), 4);
        for (r, b) in bases.iter().enumerate() {
            assert_eq!(b.rank, r);
            assert!(!b.is_null());
        }
        rt.barrier();
        rt.free(bases[rt.rank()]).unwrap();
    });
}

#[test]
fn zero_size_slices_get_null_bases() {
    run(3, |p, rt| {
        // only rank 1 contributes memory
        let bytes = if p.rank() == 1 { 128 } else { 0 };
        let bases = rt.malloc(bytes).unwrap();
        assert!(bases[0].is_null());
        assert!(!bases[1].is_null());
        assert!(bases[2].is_null());
        // communication against the non-null slice works from any rank
        if p.rank() == 0 {
            rt.put_f64s(&[3.5; 4], bases[1]).unwrap();
        }
        rt.barrier();
        if p.rank() == 2 {
            assert_eq!(rt.get_f64s(bases[1], 4).unwrap(), vec![3.5; 4]);
        }
        rt.barrier();
        // free with NULL on most ranks: the §V-B leader election resolves it
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn put_get_roundtrip_all_pairs() {
    run(4, |p, rt| {
        let bases = rt.malloc(4 * 8).unwrap();
        rt.barrier();
        // everyone writes its rank into its right neighbour's slot
        let next = (p.rank() + 1) % 4;
        rt.put_f64s(&[p.rank() as f64], bases[next].offset(8 * p.rank()))
            .unwrap();
        rt.barrier();
        // each rank reads every slot of its own slice remotely via itself
        let mine = rt.get_f64s(bases[p.rank()], 4).unwrap();
        let prev = (p.rank() + 3) % 4;
        assert_eq!(mine[prev], prev as f64);
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn multiple_allocations_translate_independently() {
    run(2, |p, rt| {
        let a = rt.malloc(64).unwrap();
        let b = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put_f64s(&[1.0], a[1]).unwrap();
            rt.put_f64s(&[2.0], b[1]).unwrap();
        }
        rt.barrier();
        if p.rank() == 1 {
            assert_eq!(rt.get_f64s(a[1], 1).unwrap(), vec![1.0]);
            assert_eq!(rt.get_f64s(b[1], 1).unwrap(), vec![2.0]);
        }
        rt.barrier();
        rt.free(a[p.rank()]).unwrap();
        rt.free(b[p.rank()]).unwrap();
    });
}

#[test]
fn bad_addresses_are_rejected() {
    run(2, |p, rt| {
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            // address in no allocation
            let bogus = GlobalAddr::new(1, 0xdead_0000);
            let mut buf = [0u8; 8];
            assert!(matches!(
                rt.get(bogus, &mut buf),
                Err(ArmciError::BadAddress { .. })
            ));
            // out-of-bounds range from a valid base
            let mut big = vec![0u8; 128];
            assert!(matches!(
                rt.get(bases[1], &mut big),
                Err(ArmciError::OutOfBounds { .. })
            ));
            // NULL
            assert!(rt.get(GlobalAddr::NULL, &mut buf).is_err());
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn group_allocation_and_free() {
    run(4, |p, rt| {
        let world = rt.world_group();
        // even/odd subgroups via collective split
        let sub = world.split((p.rank() % 2) as i64, p.rank() as i64).unwrap();
        let bases = rt.malloc_group(64, &sub).unwrap();
        assert_eq!(bases.len(), 2);
        // bases are indexed by group rank but carry absolute ids
        let peer = 1 - sub.rank();
        let peer_abs = sub.absolute_id(peer).unwrap();
        assert_eq!(bases[peer].rank, peer_abs);
        rt.put_f64s(&[p.rank() as f64], bases[peer]).unwrap();
        sub.barrier();
        let got = rt.get_f64s(bases[sub.rank()], 1).unwrap();
        assert_eq!(got, vec![peer_abs as f64]);
        sub.barrier();
        rt.free_group(bases[sub.rank()], &sub).unwrap();
    });
}

#[test]
fn noncollective_group_allocation() {
    run(5, |p, rt| {
        let world = rt.world_group();
        let members = [0usize, 2, 4];
        if members.contains(&p.rank()) {
            let g = world.create_noncollective(&members);
            let bases = rt.malloc_group(32, &g).unwrap();
            rt.put_f64s(&[g.rank() as f64], bases[(g.rank() + 1) % 3])
                .unwrap();
            g.barrier();
            let v = rt.get_f64s(bases[g.rank()], 1).unwrap();
            assert_eq!(v, vec![((g.rank() + 2) % 3) as f64]);
            g.barrier();
            rt.free_group(bases[g.rank()], &g).unwrap();
        }
    });
}

// ---------------------------------------------------------------------
// Accumulate
// ---------------------------------------------------------------------

#[test]
fn scaled_accumulate_from_all_ranks() {
    let n = 4;
    run(n, move |p, rt| {
        let bases = rt.malloc(8 * 4).unwrap();
        rt.barrier();
        // everyone accumulates [1,2,3,4] * scale(=rank+1) into rank 0
        let scale = (p.rank() + 1) as f64;
        rt.acc_f64s(scale, &[1.0, 2.0, 3.0, 4.0], bases[0]).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let v = rt.get_f64s(bases[0], 4).unwrap();
            let s: f64 = (1..=n).map(|k| k as f64).sum(); // 10
            assert_eq!(v, vec![s, 2.0 * s, 3.0 * s, 4.0 * s]);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn integer_accumulate_kinds() {
    run(2, |p, rt| {
        let bases = rt.malloc(16).unwrap();
        rt.barrier();
        if p.rank() == 1 {
            let src32 = 5i32.to_le_bytes();
            rt.acc(AccKind::Int(3), &src32, bases[0]).unwrap();
            let src64 = 7i64.to_le_bytes();
            rt.acc(AccKind::Long(2), &src64, bases[0].offset(8))
                .unwrap();
        }
        rt.barrier();
        if p.rank() == 0 {
            let mut buf = [0u8; 16];
            rt.get(bases[0], &mut buf).unwrap();
            assert_eq!(i32::from_le_bytes(buf[0..4].try_into().unwrap()), 15);
            assert_eq!(i64::from_le_bytes(buf[8..16].try_into().unwrap()), 14);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

// ---------------------------------------------------------------------
// Strided & IOV: all methods agree
// ---------------------------------------------------------------------

fn strided_roundtrip_with(method: StridedMethod) {
    let cfg = Config {
        strided: method,
        iov: method,
        ..Default::default()
    };
    run_cfg(2, cfg, |p, rt| {
        // remote array: 8 rows x 16 bytes (row stride 20 on the target)
        let bases = rt.malloc(8 * 20).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            // local dense 8x16, values = row*100 + col
            let mut local = vec![0u8; 8 * 16];
            for r in 0..8 {
                for c in 0..16 {
                    local[r * 16 + c] = (r * 16 + c) as u8;
                }
            }
            rt.put_strided(&local, &[16], bases[1], &[20], &[16, 8])
                .unwrap();
            // read back with a different local stride (row stride 32)
            let mut back = vec![0u8; 8 * 32];
            rt.get_strided(bases[1], &[20], &mut back, &[32], &[16, 8])
                .unwrap();
            for r in 0..8 {
                for c in 0..16 {
                    assert_eq!(
                        back[r * 32 + c],
                        (r * 16 + c) as u8,
                        "method {method:?} row {r} col {c}"
                    );
                }
            }
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn strided_methods_all_agree() {
    for m in [
        StridedMethod::IovConservative,
        StridedMethod::IovBatched { batch: 0 },
        StridedMethod::IovBatched { batch: 3 },
        StridedMethod::IovDatatype,
        StridedMethod::Direct,
        StridedMethod::Auto,
    ] {
        strided_roundtrip_with(m);
    }
}

#[test]
fn strided_accumulate_3d() {
    run(2, |p, rt| {
        // 3-D target: 4 planes x 3 rows x 16 bytes (2 f64), tight layout
        let plane = 3 * 16;
        let bases = rt.malloc(4 * plane).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let vals: Vec<f64> = (0..24).map(|i| i as f64).collect();
            let src = armci::acc::f64s_to_bytes(&vals);
            // dense source: count [16, 3, 4], strides [16, 48]
            rt.acc_strided(
                AccKind::Double(2.0),
                &src,
                &[16, 48],
                bases[1],
                &[16, 48],
                &[16, 3, 4],
            )
            .unwrap();
            rt.acc_strided(
                AccKind::Double(1.0),
                &src,
                &[16, 48],
                bases[1],
                &[16, 48],
                &[16, 3, 4],
            )
            .unwrap();
        }
        rt.barrier();
        if p.rank() == 1 {
            let v = rt.get_f64s(bases[1], 24).unwrap();
            for (i, x) in v.iter().enumerate() {
                assert_eq!(*x, 3.0 * i as f64);
            }
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn iov_methods_roundtrip() {
    for m in [
        StridedMethod::IovConservative,
        StridedMethod::IovBatched { batch: 4 },
        StridedMethod::IovDatatype,
        StridedMethod::Auto,
    ] {
        run(2, move |p, rt| {
            let bases = rt.malloc(512).unwrap();
            rt.barrier();
            if p.rank() == 0 {
                let local: Vec<u8> = (0..64u8).collect();
                let desc = IovDesc {
                    rank: 1,
                    bytes: 8,
                    local_offsets: vec![0, 16, 32, 48],
                    remote_addrs: vec![
                        bases[1].addr + 100,
                        bases[1].addr,
                        bases[1].addr + 300,
                        bases[1].addr + 200,
                    ],
                };
                rt.put_iov_impl_test(&desc, &local, m);
                let mut back = vec![0u8; 64];
                rt.get_iov_impl_test(&desc, &mut back, m);
                for seg in 0..4 {
                    assert_eq!(
                        &back[seg * 16..seg * 16 + 8],
                        &local[seg * 16..seg * 16 + 8],
                        "method {m:?} segment {seg}"
                    );
                }
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
    }
}

// Small shim: drive the configured-method paths through the public API.
trait IovTestExt {
    fn put_iov_impl_test(&self, desc: &IovDesc, local: &[u8], m: StridedMethod);
    fn get_iov_impl_test(&self, desc: &IovDesc, local: &mut [u8], m: StridedMethod);
}

impl IovTestExt for ArmciMpi {
    fn put_iov_impl_test(&self, desc: &IovDesc, local: &[u8], _m: StridedMethod) {
        self.put_iov(desc, local).unwrap();
    }
    fn get_iov_impl_test(&self, desc: &IovDesc, local: &mut [u8], _m: StridedMethod) {
        self.get_iov(desc, local).unwrap();
    }
}

#[test]
fn iov_auto_handles_overlapping_segments() {
    // Overlapping remote segments force the conservative fallback; the
    // datatype/batched prerequisites are violated by design here.
    let cfg = Config {
        iov: StridedMethod::Auto,
        ..Default::default()
    };
    run_cfg(2, cfg, |p, rt| {
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let local = vec![7u8; 16];
            let desc = IovDesc {
                rank: 1,
                bytes: 8,
                local_offsets: vec![0, 8],
                remote_addrs: vec![bases[1].addr, bases[1].addr + 4], // overlap!
            };
            rt.put_iov(&desc, &local).unwrap();
            let mut buf = vec![0u8; 12];
            rt.get(bases[1], &mut buf).unwrap();
            assert_eq!(buf, vec![7u8; 12]);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn iov_accumulate_all_methods() {
    for m in [
        StridedMethod::IovConservative,
        StridedMethod::IovBatched { batch: 0 },
        StridedMethod::IovDatatype,
        StridedMethod::Auto,
    ] {
        let cfg = Config {
            iov: m,
            ..Default::default()
        };
        run_cfg(2, cfg, move |p, rt| {
            let bases = rt.malloc(256).unwrap();
            rt.barrier();
            if p.rank() == 0 {
                let local = armci::acc::f64s_to_bytes(&[1.0, 2.0, 3.0]);
                let desc = IovDesc {
                    rank: 1,
                    bytes: 8,
                    local_offsets: vec![0, 8, 16],
                    remote_addrs: vec![bases[1].addr + 64, bases[1].addr, bases[1].addr + 128],
                };
                rt.acc_iov(AccKind::Double(10.0), &desc, &local).unwrap();
                rt.acc_iov(AccKind::Double(1.0), &desc, &local).unwrap();
                let v0 = rt.get_f64s(bases[1].offset(64), 1).unwrap();
                let v1 = rt.get_f64s(bases[1], 1).unwrap();
                let v2 = rt.get_f64s(bases[1].offset(128), 1).unwrap();
                assert_eq!((v0[0], v1[0], v2[0]), (11.0, 22.0, 33.0), "method {m:?}");
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
        });
    }
}

// ---------------------------------------------------------------------
// Mutexes, RMW
// ---------------------------------------------------------------------

#[test]
fn mutex_protects_critical_section() {
    let n = 6;
    let iters = 20;
    run(n, move |p, rt| {
        let bases = rt.malloc(8).unwrap();
        let h = rt.create_mutexes(1).unwrap();
        rt.barrier();
        for _ in 0..iters {
            rt.lock_mutex(h, 0, 0).unwrap();
            // unprotected read-modify-write; the mutex makes it safe
            let v = rt.get_f64s(bases[0], 1).unwrap()[0];
            rt.put_f64s(&[v + 1.0], bases[0]).unwrap();
            rt.unlock_mutex(h, 0, 0).unwrap();
        }
        rt.barrier();
        let total = rt.get_f64s(bases[0], 1).unwrap()[0];
        assert_eq!(total, (n * iters) as f64);
        rt.barrier();
        rt.destroy_mutexes(h).unwrap();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn mutex_misuse_detected() {
    run(2, |p, rt| {
        let h = rt.create_mutexes(2).unwrap();
        if p.rank() == 0 {
            assert!(rt.lock_mutex(h, 5, 0).is_err()); // bad mutex id
            assert!(rt.lock_mutex(h, 0, 9).is_err()); // bad host
            assert!(rt.unlock_mutex(h, 0, 0).is_err()); // not held
            rt.lock_mutex(h, 0, 0).unwrap();
            assert!(rt.lock_mutex(h, 0, 0).is_err()); // already held
            rt.unlock_mutex(h, 0, 0).unwrap();
            assert!(rt.lock_mutex(99, 0, 0).is_err()); // unknown handle
        }
        rt.barrier();
        rt.destroy_mutexes(h).unwrap();
    });
}

#[test]
fn rmw_fetch_add_yields_unique_values() {
    let n = 6;
    let iters = 30;
    let results = run(n, move |p, rt| {
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        let mut got = Vec::with_capacity(iters);
        for _ in 0..iters {
            got.push(rt.fetch_add(bases[0], 1).unwrap());
        }
        rt.barrier();
        let final_v = rt.get_f64s(bases[0], 0).map(|_| ()).ok();
        let _ = final_v;
        let mut fin = [0u8; 8];
        rt.get(bases[0], &mut fin).unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        (got, i64::from_le_bytes(fin))
    });
    let mut all: Vec<i64> = results.iter().flat_map(|(g, _)| g.clone()).collect();
    all.sort_unstable();
    assert_eq!(all, (0..(n * iters) as i64).collect::<Vec<_>>());
    assert_eq!(results[0].1, (n * iters) as i64);
}

#[test]
fn rmw_swap() {
    run(2, |p, rt| {
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        if p.rank() == 1 {
            let old = rt.rmw(RmwOp::Swap(42), bases[0]).unwrap();
            assert_eq!(old, 0);
            let old = rt.rmw(RmwOp::Swap(7), bases[0]).unwrap();
            assert_eq!(old, 42);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn rmw_mpi3_backend_matches() {
    let cfg = Config {
        use_mpi3_rmw: true,
        ..Default::default()
    };
    let n = 4;
    let iters = 25;
    let results = run_cfg(n, cfg, move |p, rt| {
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        let mut got = Vec::with_capacity(iters);
        for _ in 0..iters {
            got.push(rt.fetch_add(bases[0], 1).unwrap());
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        got
    });
    let mut all: Vec<i64> = results.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..(n * iters) as i64).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------
// DLA, copy, access modes, fence
// ---------------------------------------------------------------------

#[test]
fn direct_local_access() {
    run(2, |p, rt| {
        let bases = rt.malloc(32).unwrap();
        rt.barrier();
        // write locally via DLA
        rt.access_mut(bases[p.rank()], 32, &mut |b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (10 * p.rank() + i) as u8;
            }
        })
        .unwrap();
        rt.barrier();
        // peer reads it one-sided
        let peer = 1 - p.rank();
        let mut buf = vec![0u8; 4];
        rt.get(bases[peer], &mut buf).unwrap();
        assert_eq!(buf[0] as usize, 10 * peer);
        // read-only DLA
        rt.access(bases[p.rank()], 4, &mut |b| {
            assert_eq!(b[1] as usize, 10 * p.rank() + 1);
        })
        .unwrap();
        // a node peer's slice is directly accessible through the shared
        // slab (both ranks share a node on the default platform)
        rt.access(bases[peer], 4, &mut |b| {
            assert_eq!(b[0] as usize, 10 * peer);
        })
        .unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn remote_dla_rejected_without_shm() {
    // With the shm subsystem off there is no slab, so direct access to
    // any remote rank — node peer or not — stays illegal.
    let cfg = Config {
        shm: false,
        ..Default::default()
    };
    run_cfg(2, cfg, |p, rt| {
        let bases = rt.malloc(32).unwrap();
        rt.barrier();
        let peer = 1 - p.rank();
        assert!(matches!(
            rt.access(bases[peer], 4, &mut |_| {}),
            Err(ArmciError::BadDescriptor(_))
        ));
        assert!(matches!(
            rt.access_mut(bases[peer], 4, &mut |_| {}),
            Err(ArmciError::BadDescriptor(_))
        ));
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn global_to_global_copy_stages_safely() {
    run(3, |p, rt| {
        let a = rt.malloc(64).unwrap();
        let b = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put_f64s(&[1.5, 2.5], a[1]).unwrap();
        }
        rt.barrier();
        if p.rank() == 1 {
            // copy from my own global slice to a remote one — the §V-E1
            // staging case (local buffer is in global space)
            rt.copy(a[1], b[2], 16).unwrap();
        }
        rt.barrier();
        if p.rank() == 2 {
            assert_eq!(rt.get_f64s(b[2], 2).unwrap(), vec![1.5, 2.5]);
            // remote-to-remote copy
            rt.copy(b[2], b[0], 16).unwrap();
        }
        rt.barrier();
        if p.rank() == 0 {
            assert_eq!(rt.get_f64s(b[0], 2).unwrap(), vec![1.5, 2.5]);
        }
        rt.barrier();
        rt.free(a[p.rank()]).unwrap();
        rt.free(b[p.rank()]).unwrap();
    });
}

#[test]
fn access_modes_allow_concurrent_readers() {
    let n = 6;
    run(n, move |p, rt| {
        let world = rt.world_group();
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put_f64s(&[std::f64::consts::PI; 8], bases[0]).unwrap();
        }
        rt.barrier();
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::ReadOnly)
            .unwrap();
        // hammer rank 0 with concurrent reads — all under shared locks now
        for _ in 0..50 {
            let v = rt.get_f64s(bases[0], 8).unwrap();
            assert_eq!(v, vec![std::f64::consts::PI; 8]);
        }
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::Standard)
            .unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn accumulate_only_mode_is_correct_under_contention() {
    let n = 6;
    let iters = 40;
    run(n, move |p, rt| {
        let world = rt.world_group();
        let bases = rt.malloc(8 * 16).unwrap();
        rt.barrier();
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::AccumulateOnly)
            .unwrap();
        for _ in 0..iters {
            rt.acc_f64s(1.0, &[1.0; 16], bases[0]).unwrap();
        }
        rt.set_access_mode(bases[p.rank()], &world, AccessMode::Standard)
            .unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let v = rt.get_f64s(bases[0], 16).unwrap();
            assert_eq!(v, vec![(n * iters) as f64; 16]);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn fence_is_noop_and_ordering_holds() {
    run(2, |p, rt| {
        let bases = rt.malloc(16).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put_f64s(&[1.0], bases[1]).unwrap();
            // under ARMCI-MPI, remote completion happened at unlock:
            rt.fence(1).unwrap();
            rt.fence_all().unwrap();
            // location consistency: our own later get observes the put
            assert_eq!(rt.get_f64s(bases[1], 1).unwrap(), vec![1.0]);
        }
        rt.barrier();
        if p.rank() == 1 {
            assert_eq!(rt.get_f64s(bases[1], 1).unwrap(), vec![1.0]);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn nonblocking_ops_complete_eagerly() {
    run(2, |p, rt| {
        let bases = rt.malloc(16).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let h = rt.nb_put(&5.0f64.to_le_bytes(), bases[1]).unwrap();
            rt.wait(h).unwrap();
            let mut buf = [0u8; 8];
            let h = rt.nb_get(bases[1], &mut buf).unwrap();
            rt.wait(h).unwrap();
            assert_eq!(f64::from_le_bytes(buf), 5.0);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn location_consistency_origin_order() {
    // A process observes its own operations in issue order (§V-F).
    run(2, |p, rt| {
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            for i in 0..100 {
                rt.put_f64s(&[i as f64], bases[1]).unwrap();
                let v = rt.get_f64s(bases[1], 1).unwrap()[0];
                assert_eq!(v, i as f64);
            }
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

// ---------------------------------------------------------------------
// Virtual-time sanity at the ARMCI level
// ---------------------------------------------------------------------

#[test]
fn conservative_slower_than_datatype_for_many_segments() {
    // Use the Cray XE model: the default (InfiniBand) platform models the
    // MVAPICH2 batched-op bug, under which batched genuinely loses to
    // conservative at 1024 segments (Figure 4b) — asserted separately in
    // the figure tests.
    let rt_cfg = RuntimeConfig::on_platform(simnet::PlatformId::CrayXE6);
    let time_with = move |method: StridedMethod| -> f64 {
        let cfg = Config {
            strided: method,
            iov: method,
            // Cost comparison between wire IOV methods: the intra-node
            // shared-memory tier would route both ranks' transfers around
            // the NIC model entirely.
            shm: false,
            ..Default::default()
        };
        let times = Runtime::run_with(2, rt_cfg.clone(), move |p| {
            let rt = ArmciMpi::with_config(p, cfg.clone());
            let bases = rt.malloc(1024 * 64).unwrap();
            rt.barrier();
            let mut t = 0.0;
            if p.rank() == 0 {
                let local = vec![1u8; 1024 * 16];
                let t0 = p.clock().now();
                rt.put_strided(&local, &[16], bases[1], &[64], &[16, 1024])
                    .unwrap();
                t = p.clock().now() - t0;
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
            t
        });
        times[0]
    };
    let cons = time_with(StridedMethod::IovConservative);
    let dtype = time_with(StridedMethod::IovDatatype);
    let batched = time_with(StridedMethod::IovBatched { batch: 0 });
    assert!(dtype < batched, "dtype {dtype} vs batched {batched}");
    assert!(batched < cons, "batched {batched} vs conservative {cons}");
}
