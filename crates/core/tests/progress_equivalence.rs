//! Mode equivalence of the async-progress engine (the optimisation's
//! semantic contract): the per-node progress agent reprices waits, it
//! must never change data. Over random op mixes (put / get / acc / rmw /
//! nonblocking pairs), rank counts and compute skews, and across all
//! three wire tiers (MPI RMA, channel, shm), a run with
//! `ProgressMode::Agent` must produce bit-identical payloads to the
//! `ProgressMode::None` baseline:
//!
//! * every get observes the same bytes,
//! * every rmw returns the same ticket,
//! * every rank's final window image is identical.
//!
//! Time is charged for real (`charge_time: true`) and compute spans are
//! interleaved so the agent coupling is genuinely hot — profiles are
//! published at the fencing barriers and priced on the passive-target
//! paths — making this a test of "agent changes clocks only", not of a
//! dormant code path.

use armci::{AccKind, Armci, RmwOp};
use armci_mpi::{ArmciMpi, Config, ProgressMode, TransportKind};
use mpisim::{Runtime, RuntimeConfig};
use proptest::prelude::*;
use simnet::{Platform, PlatformId};

/// Bytes of window memory per rank: a data region the puts/gets hit, an
/// i32 acc region, and an rmw cell, all disjoint.
const WIN: usize = 512;
const ACC_AT: usize = 256;
const RMW_AT: usize = 384;

/// Runtime with `ranks_per_node` cores per node and real virtual-time
/// charging, so the agent model has nonzero busy profiles to price.
fn layout(ranks_per_node: u32) -> RuntimeConfig {
    let mut platform =
        Platform::get(PlatformId::InfiniBandCluster).customized("progress-equivalence-test");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = ranks_per_node;
    RuntimeConfig {
        platform,
        charge_time: true,
        ..Default::default()
    }
}

/// The three wire tiers the agent must be equivalent on.
#[derive(Clone, Copy, Debug)]
enum Wire {
    /// MPI-3 passive-target windows, one rank per node (internode).
    MpiRma,
    /// The RAMC-style channel backend, one rank per node (internode).
    Channel,
    /// The shared-memory tier: every rank on one node, shm slabs on.
    Shm,
}

impl Wire {
    fn config(self, progress: ProgressMode) -> Config {
        match self {
            Wire::MpiRma => Config {
                shm: false,
                progress,
                ..Default::default()
            },
            Wire::Channel => Config {
                shm: false,
                transport: TransportKind::Channel,
                progress,
                ..Default::default()
            },
            Wire::Shm => Config {
                shm: true,
                progress,
                ..Default::default()
            },
        }
    }

    fn ranks_per_node(self, nprocs: usize) -> u32 {
        match self {
            Wire::MpiRma | Wire::Channel => 1,
            Wire::Shm => nprocs as u32,
        }
    }
}

/// One step of a serialised schedule; the actor is `who % nprocs`, the
/// target is always the actor's right neighbour's window.
#[derive(Clone, Debug)]
enum Op {
    /// Blocking contiguous put of `len` bytes of `fill` at `off`.
    Put { fill: u8, off: usize, len: usize },
    /// Blocking get of `len` bytes at `off`; the bytes read are part of
    /// the compared transcript.
    Get { off: usize, len: usize },
    /// Scaled i32 accumulate of `n` small elements into the acc region.
    Acc { val: i32, scale: i32, n: usize },
    /// Fetch-and-add on the target's rmw cell; the ticket is compared.
    Rmw { add: i64 },
    /// Nonblocking put + wait (exercises the queued/flush path).
    NbPut { fill: u8, off: usize, len: usize },
    /// Local compute span in microseconds: feeds the progress board so
    /// peers price stalls against a genuinely busy target.
    Compute { us: u32 },
}

type Sched = Vec<(usize, Op)>;

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest shim has no `prop_oneof`; a selector plus a
    // shared parameter word covers the same op space.
    (0usize..6, 0usize..4096, 0usize..192, 1usize..64, 1u32..200).prop_map(
        |(sel, a, off, len, us)| match sel {
            0 => Op::Put {
                fill: (a % 251) as u8,
                off,
                len,
            },
            1 => Op::Get { off, len },
            2 => Op::Acc {
                val: (a % 8) as i32,
                scale: 1 + (a % 3) as i32,
                n: 1 + a % 15,
            },
            3 => Op::Rmw {
                add: 1 + (a % 8) as i64,
            },
            4 => Op::NbPut {
                fill: (a % 251) as u8,
                off,
                len,
            },
            _ => Op::Compute { us },
        },
    )
}

fn arb_sched() -> impl Strategy<Value = Sched> {
    proptest::collection::vec((0usize..8, arb_op()), 1..12)
}

/// Everything data-bearing a run produces, gathered per rank: the bytes
/// every get observed, every rmw ticket, and the final window image.
type Transcript = Vec<(Vec<u8>, Vec<i64>, Vec<u8>)>;

/// Replays `sched` under one wire tier and progress mode. Steps are
/// fenced with barriers so the op order is deterministic — which also
/// publishes fresh busy profiles to the progress board each step.
fn run_mode(nprocs: usize, wire: Wire, progress: ProgressMode, sched: Sched) -> Transcript {
    Runtime::run_with(nprocs, layout(wire.ranks_per_node(nprocs)), move |p| {
        let rt = ArmciMpi::with_config(p, wire.config(progress));
        let bases = rt.malloc(WIN).unwrap();
        rt.access_mut(bases[p.rank()], WIN, &mut |b| b.fill(0))
            .unwrap();
        rt.barrier();
        let mut got = Vec::new();
        let mut tickets = Vec::new();
        for (who, op) in &sched {
            rt.barrier();
            if who % nprocs != p.rank() {
                continue;
            }
            let t = bases[(p.rank() + 1) % nprocs];
            match op {
                Op::Put { fill, off, len } => {
                    rt.put(&vec![*fill; *len], t.offset(*off)).unwrap();
                }
                Op::Get { off, len } => {
                    let mut buf = vec![0u8; *len];
                    rt.get(t.offset(*off), &mut buf).unwrap();
                    got.extend_from_slice(&buf);
                }
                Op::Acc { val, scale, n } => {
                    let src: Vec<u8> = (0..*n as i32)
                        .flat_map(|i| (val + i % 3).to_le_bytes())
                        .collect();
                    rt.acc(AccKind::Int(*scale), &src, t.offset(ACC_AT))
                        .unwrap();
                }
                Op::Rmw { add } => {
                    tickets.push(rt.rmw(RmwOp::FetchAdd(*add), t.offset(RMW_AT)).unwrap());
                }
                Op::NbPut { fill, off, len } => {
                    let h = rt.nb_put(&vec![*fill; *len], t.offset(*off)).unwrap();
                    rt.wait(h).unwrap();
                }
                Op::Compute { us } => p.compute(*us as f64 * 1e-6),
            }
        }
        rt.barrier();
        let mut image = vec![0u8; WIN];
        rt.access_mut(bases[p.rank()], WIN, &mut |b| image.copy_from_slice(b))
            .unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        (got, tickets, image)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Agent on vs off is bit-identical — same get'd bytes, same rmw
    /// tickets, same final images — for any op mix, on all three wires.
    #[test]
    fn agent_and_none_bit_identical(
        nprocs in 2usize..5,
        sched in arb_sched(),
    ) {
        for wire in [Wire::MpiRma, Wire::Channel, Wire::Shm] {
            let none = run_mode(nprocs, wire, ProgressMode::None, sched.clone());
            let agent = run_mode(nprocs, wire, ProgressMode::Agent, sched.clone());
            prop_assert_eq!(
                &none, &agent,
                "agent changed payloads on {:?} with {:?}", wire, sched
            );
        }
    }

    /// `Auto` may resolve to either discipline depending on wire and
    /// platform, but whatever it picks must also be payload-identical.
    #[test]
    fn auto_matches_baseline(
        nprocs in 2usize..4,
        sched in arb_sched(),
    ) {
        let none = run_mode(nprocs, Wire::MpiRma, ProgressMode::None, sched.clone());
        let auto = run_mode(nprocs, Wire::MpiRma, ProgressMode::Auto, sched.clone());
        prop_assert_eq!(&none, &auto, "auto diverged with {:?}", sched);
    }
}
