//! Mode equivalence of the synchronization stack (the refactor's
//! semantic contract): native backend atomics, the Latham-mutex
//! fallback, and the sharded NXTVAL counter must hand out *identical*
//! tickets. Over random rank counts, node layouts and op interleavings:
//!
//! * with a serialised schedule, per-rank ticket sequences and the final
//!   counter value are bit-identical across Native, MutexFallback and a
//!   block-1 [`NxtvalCounter`] (block 1 degenerates to the flat
//!   counter);
//! * with genuinely concurrent takers and `block > 1`, strict FIFO is
//!   traded away but tickets stay unique and per-rank monotonic, and
//!   after a collective drain [`NxtvalCounter::issued`] equals exactly
//!   the number of tickets handed out.

use armci::{Armci, RmwOp};
use armci_mpi::{ArmciMpi, AtomicsMode, Config, NxtvalCounter};
use mpisim::{Runtime, RuntimeConfig};
use proptest::prelude::*;
use simnet::{Platform, PlatformId};

/// Runtime with `ranks_per_node` cores per node and no clock charging,
/// so layouts range from everything-on-one-node to one-rank-per-node.
fn layout(ranks_per_node: u32) -> RuntimeConfig {
    let mut platform =
        Platform::get(PlatformId::InfiniBandCluster).customized("atomics-equivalence-test");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = ranks_per_node;
    RuntimeConfig {
        platform,
        charge_time: false,
        ..Default::default()
    }
}

/// The three ticket disciplines under test.
#[derive(Clone, Copy, Debug)]
enum Discipline {
    /// `ARMCI_Rmw` on a shared cell, native backend atomics.
    Native,
    /// `ARMCI_Rmw` on a shared cell, Latham mutex + two epochs.
    Mutex,
    /// [`NxtvalCounter`] with the given refill block.
    Sharded(u16),
}

impl Discipline {
    fn config(self) -> Config {
        match self {
            Discipline::Mutex => Config {
                atomics: AtomicsMode::MutexFallback,
                ..Default::default()
            },
            Discipline::Native | Discipline::Sharded(_) => Config {
                atomics: AtomicsMode::Native,
                ..Default::default()
            },
        }
    }
}

/// A serialised interleaving: step `i` lets rank `sched[i].0 % nprocs`
/// take `sched[i].1` tickets, with barriers fencing the steps so the
/// global take order is deterministic.
type Sched = Vec<(usize, usize)>;

/// Replays `sched` under one discipline; returns each rank's ticket
/// sequence plus the final counter value (identical on every rank).
fn run_serialised(
    nprocs: usize,
    rpn: u32,
    d: Discipline,
    sched: Sched,
) -> (Vec<Vec<i64>>, Vec<i64>) {
    let out = Runtime::run_with(nprocs, layout(rpn), move |p| {
        let rt = ArmciMpi::with_config(p, d.config());
        let (counter, cell) = match d {
            Discipline::Sharded(block) => (Some(NxtvalCounter::create(&rt, block).unwrap()), None),
            _ => {
                let bases = rt.malloc(8).unwrap();
                rt.access_mut(bases[p.rank()], 8, &mut |b| b.fill(0))
                    .unwrap();
                rt.barrier();
                (None, Some(bases))
            }
        };
        let next = |rt: &ArmciMpi| -> i64 {
            match (&counter, &cell) {
                (Some(c), _) => c.next(rt).unwrap(),
                (_, Some(bases)) => rt.rmw(RmwOp::FetchAdd(1), bases[0]).unwrap(),
                _ => unreachable!(),
            }
        };
        let mut seq = Vec::new();
        for (who, n) in &sched {
            rt.barrier();
            if who % rt.nprocs() == p.rank() {
                for _ in 0..*n {
                    seq.push(next(&rt));
                }
            }
        }
        rt.barrier();
        let fin = match (&counter, &cell) {
            (Some(c), _) => {
                c.drain(&rt).unwrap();
                rt.barrier();
                c.issued(&rt).unwrap()
            }
            (_, Some(bases)) => rt.rmw(RmwOp::FetchAdd(0), bases[0]).unwrap(),
            _ => unreachable!(),
        };
        rt.barrier();
        match (counter, cell) {
            (Some(c), _) => c.destroy(&rt).unwrap(),
            (_, Some(bases)) => rt.free(bases[p.rank()]).unwrap(),
            _ => unreachable!(),
        }
        (seq, fin)
    });
    out.into_iter().unzip()
}

/// All ranks take `per_rank` tickets concurrently (no fences), then the
/// counter is collectively drained. Returns per-rank sequences and the
/// post-drain `issued()` reading.
fn run_concurrent(nprocs: usize, rpn: u32, block: u16, per_rank: usize) -> (Vec<Vec<i64>>, i64) {
    let out = Runtime::run_with(nprocs, layout(rpn), move |p| {
        let rt = ArmciMpi::with_config(p, Config::default());
        let c = NxtvalCounter::create(&rt, block).unwrap();
        let mut seq = Vec::with_capacity(per_rank);
        for _ in 0..per_rank {
            seq.push(c.next(&rt).unwrap());
        }
        rt.barrier();
        c.drain(&rt).unwrap();
        rt.barrier();
        let issued = c.issued(&rt).unwrap();
        rt.barrier();
        c.destroy(&rt).unwrap();
        let _ = p;
        (seq, issued)
    });
    let issued = out[0].1;
    (out.into_iter().map(|(s, _)| s).collect(), issued)
}

fn arb_sched() -> impl Strategy<Value = Sched> {
    proptest::collection::vec((0usize..8, 0usize..4), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Native, mutex-fallback and block-1 sharded tickets are
    /// bit-identical — same per-rank sequences, same final value — for
    /// any rank count, node layout and serialised interleaving.
    #[test]
    fn flat_disciplines_bit_identical(
        nprocs in 2usize..6,
        rpn in 1u32..4,
        sched in arb_sched(),
    ) {
        let (seq_native, fin_native) =
            run_serialised(nprocs, rpn, Discipline::Native, sched.clone());
        let (seq_mutex, fin_mutex) =
            run_serialised(nprocs, rpn, Discipline::Mutex, sched.clone());
        let (seq_shard, fin_shard) =
            run_serialised(nprocs, rpn, Discipline::Sharded(1), sched.clone());
        prop_assert_eq!(&seq_native, &seq_mutex);
        prop_assert_eq!(&seq_native, &seq_shard);
        prop_assert_eq!(&fin_native, &fin_mutex);
        prop_assert_eq!(&fin_native, &fin_shard);
        // The deterministic reference: tickets are handed out in global
        // schedule order, 0..total.
        let total: usize = sched.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(fin_native[0], total as i64);
        let mut expect = vec![Vec::new(); nprocs];
        let mut t = 0i64;
        for (who, n) in &sched {
            for _ in 0..*n {
                expect[who % nprocs].push(t);
                t += 1;
            }
        }
        prop_assert_eq!(&seq_native, &expect);
    }

    /// With `block > 1` and concurrent takers, tickets stay unique and
    /// per-rank monotonic, and `issued()` is exact after the drain.
    #[test]
    fn sharded_tickets_unique_and_accounted(
        nprocs in 2usize..6,
        rpn in 1u32..4,
        block in 2u16..9,
        per_rank in 1usize..12,
    ) {
        let (seqs, issued) = run_concurrent(nprocs, rpn, block, per_rank);
        let mut all = Vec::new();
        for seq in &seqs {
            prop_assert_eq!(seq.len(), per_rank);
            prop_assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "per-rank tickets must be monotonic: {:?}",
                seq
            );
            all.extend_from_slice(seq);
        }
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), nprocs * per_rank, "tickets must be unique");
        prop_assert_eq!(issued, (nprocs * per_rank) as i64);
    }
}
