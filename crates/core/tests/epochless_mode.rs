//! Tests of the MPI-3 epochless backend (§VIII-B): the same workloads as
//! the MPI-2 configuration, with identical results and lower overheads.

use armci::{Armci, ArmciExt};
use armci_mpi::{ArmciMpi, Config};
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, CcsdConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn epochless() -> Config {
    Config {
        epochless: true,
        ..Default::default()
    }
}

#[test]
fn contiguous_roundtrip() {
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let bases = rt.malloc(128).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put_f64s(&[1.5; 4], bases[1]).unwrap();
            rt.acc_f64s(2.0, &[1.0; 4], bases[1]).unwrap();
        }
        rt.barrier();
        assert_eq!(rt.get_f64s(bases[1], 4).unwrap(), vec![3.5; 4]);
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn strided_and_iov_roundtrip() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let bases = rt.malloc(8 * 24).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let local: Vec<u8> = (0..128u8).collect();
            rt.put_strided(&local, &[16], bases[1], &[24], &[16, 8])
                .unwrap();
            let mut back = vec![0u8; 128];
            rt.get_strided(bases[1], &[24], &mut back, &[16], &[16, 8])
                .unwrap();
            assert_eq!(back, local);
            // IOV path
            let desc = armci::IovDesc {
                rank: 1,
                bytes: 8,
                local_offsets: vec![0, 8],
                remote_addrs: vec![bases[1].addr, bases[1].addr + 48],
            };
            let mut two = vec![0u8; 16];
            rt.get_iov(&desc, &mut two).unwrap();
            assert_eq!(&two[..8], &local[..8]);
            assert_eq!(&two[8..], &local[32..40]); // remote 48 = row 2 start
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn rmw_is_native_fetch_and_op() {
    let n = 6;
    let iters = 40;
    let results = Runtime::run_with(n, quiet(), move |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        let mut got = Vec::with_capacity(iters);
        for _ in 0..iters {
            got.push(rt.fetch_add(bases[0], 1).unwrap());
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        got
    });
    let mut all: Vec<i64> = results.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..(n * iters) as i64).collect::<Vec<_>>());
}

#[test]
fn dla_under_lock_all() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let bases = rt.malloc(32).unwrap();
        rt.barrier();
        rt.access_mut(bases[p.rank()], 32, &mut |b| b.fill(p.rank() as u8 + 1))
            .unwrap();
        rt.access(bases[p.rank()], 4, &mut |b| {
            assert_eq!(b[0], p.rank() as u8 + 1)
        })
        .unwrap();
        rt.barrier();
        let peer = 1 - p.rank();
        let mut buf = [0u8; 4];
        rt.get(bases[peer], &mut buf).unwrap();
        assert_eq!(buf[0], peer as u8 + 1);
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn full_ga_stack_on_epochless_backend() {
    Runtime::run_with(4, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let a = GlobalArray::create(&rt, "e", GaType::F64, &[10, 10]).unwrap();
        a.fill(1.0).unwrap();
        a.acc_patch(1.0, &[2, 2], &[8, 8], &vec![1.0; 36]).unwrap();
        a.sync();
        let centre = a.get_patch(&[4, 4], &[5, 5]).unwrap()[0];
        assert_eq!(centre, 1.0 + 4.0);
        a.sync();
        a.destroy().unwrap();
    });
}

#[test]
fn ccsd_energy_matches_mpi2_configuration() {
    let cfg = CcsdConfig::tiny();
    let e2 = Runtime::run_with(3, quiet(), move |p| {
        let rt = ArmciMpi::new(p);
        run_ccsd(p, &rt, &cfg).energy
    })[0];
    let e3 = Runtime::run_with(3, quiet(), move |p| {
        let rt = ArmciMpi::with_config(p, epochless());
        run_ccsd(p, &rt, &cfg).energy
    })[0];
    assert_eq!(e2, e3);
}

#[test]
fn epochless_is_faster_in_virtual_time() {
    // The ablation the paper argues for: removing per-op epoch overhead
    // and the mutex-based RMW pays off.
    let time = |cfg: Config| -> f64 {
        Runtime::run(2, move |p| {
            let rt = ArmciMpi::with_config(p, cfg.clone());
            let bases = rt.malloc(1 << 16).unwrap();
            rt.barrier();
            let mut t = 0.0;
            if p.rank() == 0 {
                let t0 = p.clock().now();
                for i in 0..50 {
                    rt.put_f64s(&[i as f64; 64], bases[1]).unwrap();
                    rt.fetch_add(bases[1].offset(4096), 1).unwrap();
                }
                t = p.clock().now() - t0;
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
            t
        })[0]
    };
    // The MPI-2 arm must also pay the §V-D mutex RMW protocol: native
    // atomics are the default now, so ask for the fallback explicitly.
    let t_mpi2 = time(Config {
        atomics: armci_mpi::AtomicsMode::MutexFallback,
        ..Default::default()
    });
    let t_mpi3 = time(epochless());
    assert!(
        t_mpi3 < 0.7 * t_mpi2,
        "epochless {t_mpi3} should beat per-op epochs {t_mpi2}"
    );
}
