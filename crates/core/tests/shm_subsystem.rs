//! The intra-node shared-memory subsystem: route equivalence with the
//! wire path across rank layouts, the fast-path counters, and the
//! eager completion of bypassed nonblocking operations.

use armci::{AccKind, Armci};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Runtime, RuntimeConfig};
use proptest::prelude::*;
use simnet::{Platform, PlatformId};

/// Runtime with `ranks_per_node` cores per node and no clock charging,
/// so layouts range from everything-on-one-node to one-rank-per-node.
fn layout(ranks_per_node: u32) -> RuntimeConfig {
    let mut platform =
        Platform::get(PlatformId::InfiniBandCluster).customized("shm-subsystem-test");
    platform.sockets_per_node = 1;
    platform.cores_per_socket = ranks_per_node;
    RuntimeConfig {
        platform,
        charge_time: false,
        ..Default::default()
    }
}

fn shm_cfg(shm: bool) -> Config {
    Config {
        shm,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Fast-path counters and statistics mirroring
// ---------------------------------------------------------------------

#[test]
fn same_node_ops_hit_the_fast_path_and_mirror_op_stats() {
    Runtime::run_with(2, layout(2), |p| {
        let rt = ArmciMpi::new(p);
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let src = [7u8; 32];
            let mut dst = [0u8; 32];
            rt.put(&src, bases[1]).unwrap();
            rt.get(bases[1], &mut dst).unwrap();
            assert_eq!(dst, src);
            rt.acc(AccKind::Double(1.0), &[0u8; 16], bases[1]).unwrap();

            // The route is invisible to OpStats: same counters the wire
            // path would have produced.
            let s = rt.stats();
            assert_eq!((s.puts, s.gets, s.accs), (1, 1, 1));
            assert_eq!(s.bytes_put, 32);
            assert_eq!(s.bytes_got, 32);
            assert_eq!(s.bytes_acc, 16);
            assert_eq!(s.epochs, 3, "one epoch per blocking op, as on wire");

            // The route is visible only through the stage counters.
            let g = rt.stage_stats();
            assert_eq!(g.shm_hits, 3);
            assert_eq!(g.shm_bypass_bytes, 32 + 32 + 16);
            assert_eq!(g.executed_ops, 0, "nothing touched the NIC model");
            assert!((g.shm_hit_rate() - 1.0).abs() < f64::EPSILON);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn cross_node_ops_stay_on_the_wire() {
    Runtime::run_with(2, layout(1), |p| {
        let rt = ArmciMpi::new(p);
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put(&[7u8; 32], bases[1]).unwrap();
            let g = rt.stage_stats();
            assert_eq!(g.shm_hits, 0);
            assert_eq!(g.shm_bypass_bytes, 0);
            assert!(g.executed_ops > 0);
            assert!(g.shm_hit_rate() < f64::EPSILON);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn forced_wire_config_never_routes_shm() {
    Runtime::run_with(2, layout(2), |p| {
        let rt = ArmciMpi::with_config(p, shm_cfg(false));
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.put(&[1u8; 16], bases[1]).unwrap();
            assert_eq!(rt.stage_stats().shm_hits, 0);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn bypassed_nonblocking_ops_complete_eagerly() {
    Runtime::run_with(2, layout(2), |p| {
        let rt = ArmciMpi::new(p);
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let mut hs = Vec::new();
            for i in 0..4usize {
                hs.push(
                    rt.nb_put(&[i as u8 + 1; 8], bases[1].offset(i * 8))
                        .unwrap(),
                );
            }
            let g = rt.stage_stats();
            assert_eq!(g.shm_hits, 4, "all four ops took the fast path");
            assert_eq!(g.nb_submitted, 0, "nothing entered the deferred engine");
            rt.wait_all(hs).unwrap();
            let mut img = vec![0u8; 32];
            rt.get(bases[1], &mut img).unwrap();
            for i in 0..4usize {
                assert_eq!(&img[i * 8..(i + 1) * 8], &[i as u8 + 1; 8]);
            }
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn mixed_node_fanout_splits_by_reachability() {
    // Four ranks, two per node: targets 1 (same node as 0) and 2, 3
    // (other node). The same program hits both tiers.
    Runtime::run_with(4, layout(2), |p| {
        let rt = ArmciMpi::new(p);
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            for (t, &base) in bases.iter().enumerate().skip(1) {
                rt.put(&[t as u8; 16], base).unwrap();
            }
            let g = rt.stage_stats();
            assert_eq!(g.shm_hits, 1, "only the node peer bypasses");
            assert_eq!(g.shm_bypass_bytes, 16);
            assert_eq!(g.executed_ops, 2, "off-node targets stay on wire");
            let s = rt.stats();
            assert_eq!(s.puts, 3, "OpStats blind to the route split");
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

// ---------------------------------------------------------------------
// Property: the shm route is observationally identical to the wire
// route under random layouts and op mixes
// ---------------------------------------------------------------------

/// One random operation: `(kind, target, slot, len, seed)`. Kinds 0–2
/// are blocking put/get/acc; 3–5 their nonblocking forms. Slots are
/// 8-byte (f64) units inside each rank's 256-byte region.
type MixOp = (u8, usize, usize, usize, u8);

fn arb_ops() -> impl Strategy<Value = Vec<MixOp>> {
    proptest::collection::vec((0u8..6, 1usize..4, 0usize..24, 1usize..6, 0u8..200), 1..14)
}

/// Replays an op mix from rank 0 over four ranks; returns the final
/// images of ranks 1–3 and the concatenated get results.
fn run_mix(ranks_per_node: u32, shm: bool, ops: Vec<MixOp>) -> (Vec<u8>, Vec<u8>) {
    Runtime::run_with(4, layout(ranks_per_node), move |p| {
        let rt = ArmciMpi::with_config(p, shm_cfg(shm));
        let bases = rt.malloc(256).unwrap();
        rt.barrier();
        let mut out = (Vec::new(), Vec::new());
        if p.rank() == 0 {
            let mut handles = Vec::new();
            let mut gets: Vec<Vec<u8>> = Vec::new();
            for &(kind, target, slot, len, seed) in &ops {
                let addr = bases[target].offset(slot * 8);
                let bytes = len * 8;
                match kind {
                    0 | 3 => {
                        let payload: Vec<u8> = (0..bytes)
                            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
                            .collect();
                        if kind == 0 {
                            rt.put(&payload, addr).unwrap();
                        } else {
                            handles.push(rt.nb_put(&payload, addr).unwrap());
                        }
                    }
                    1 | 4 => {
                        let mut buf = vec![0u8; bytes];
                        if kind == 1 {
                            rt.get(addr, &mut buf).unwrap();
                        } else {
                            handles.push(rt.nb_get(addr, &mut buf).unwrap());
                        }
                        gets.push(buf);
                    }
                    _ => {
                        let raw: Vec<u8> = std::iter::repeat_n(f64::from(seed).to_le_bytes(), len)
                            .flatten()
                            .collect();
                        if kind == 2 {
                            rt.acc(AccKind::Double(1.0), &raw, addr).unwrap();
                        } else {
                            handles.push(rt.nb_acc(AccKind::Double(1.0), &raw, addr).unwrap());
                        }
                    }
                }
            }
            rt.wait_all(handles).unwrap();
            let mut images = Vec::new();
            for &base in &bases[1..] {
                let mut image = vec![0u8; 256];
                rt.get(base, &mut image).unwrap();
                images.extend(image);
            }
            out = (images, gets.concat());
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        out
    })
    .swap_remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any mix of blocking and nonblocking puts, gets and accumulates
    /// leaves byte-identical remote memory and get results whether
    /// transfers ride the shared-memory fast path or the wire, on every
    /// node layout from fully-spread to fully-packed.
    #[test]
    fn shm_route_equivalent_to_wire(ops in arb_ops()) {
        for ranks_per_node in [1u32, 2, 4] {
            let wire = run_mix(ranks_per_node, false, ops.clone());
            let shm = run_mix(ranks_per_node, true, ops.clone());
            prop_assert_eq!(
                &shm, &wire,
                "route divergence at {} ranks/node", ranks_per_node
            );
        }
    }
}
