//! Epoch-invariant auditor over real runtime traces (§IV/§V).
//!
//! Each test captures a genuine ARMCI-MPI run with the recorder on,
//! verifies the auditor stays silent on the legal trace, then seeds one
//! specific illegal interleaving and asserts the auditor flags exactly
//! that violation — no false positives, no misses.

use armci::{AccKind, Armci};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Proc, Runtime, RuntimeConfig};
use obs::audit::{audit, Rule};
use obs::{Event, EventKind};
use simnet::PlatformId;

/// Runs `body` on two simulated ranks with the recorder enabled and
/// returns the full event stream. Serialised on the recorder's global
/// guard — the sink is process-wide.
fn capture_with(
    epochless: bool,
    shm: bool,
    body: impl Fn(&Proc, &ArmciMpi) + Send + Sync,
) -> Vec<Event> {
    let _g = obs::test_guard();
    obs::enable();
    obs::clear();
    let cfg = RuntimeConfig::on_platform(PlatformId::InfiniBandCluster);
    Runtime::run_with(2, cfg, |p| {
        let rt = ArmciMpi::with_config(
            p,
            Config {
                epochless,
                shm,
                ..Default::default()
            },
        );
        body(p, &rt);
        obs::flush_thread();
    });
    obs::take()
}

/// Wire-path capture: both ranks share a node, so the seeded-violation
/// tests below pin `shm: false` to keep genuine `Rma` events in the
/// trace. The shm-routed trace is audited separately.
fn capture(epochless: bool, body: impl Fn(&Proc, &ArmciMpi) + Send + Sync) -> Vec<Event> {
    capture_with(epochless, false, body)
}

/// A blocking-only workload: contiguous put/get/acc, a strided put, and
/// a direct-local-access region, all in MPI-2 per-op epoch mode.
fn blocking_trace() -> Vec<Event> {
    capture(false, |p, rt| {
        let bases = rt.malloc(1 << 16).expect("malloc");
        rt.barrier();
        if p.rank() == 0 {
            let src = vec![3u8; 1 << 16];
            let mut dst = vec![0u8; 1 << 10];
            rt.put(&src[..1 << 12], bases[1]).unwrap();
            rt.get(bases[1], &mut dst).unwrap();
            rt.acc(AccKind::Int(1), &src[..512], bases[1]).unwrap();
            rt.put_strided(&src[..64 * 32], &[64], bases[1], &[128], &[64, 32])
                .unwrap();
        }
        rt.barrier();
        rt.access_mut(bases[p.rank()], 16, &mut |b| b[0] ^= 1)
            .unwrap();
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    })
}

/// Position of the first event on `rank` matching `pred`.
fn find(events: &[Event], rank: u32, pred: impl Fn(&EventKind) -> bool) -> usize {
    events
        .iter()
        .position(|e| e.rank == rank && pred(&e.kind))
        .expect("expected event not found in trace")
}

#[test]
fn legal_blocking_trace_is_silent() {
    let events = blocking_trace();
    assert!(!events.is_empty());
    let v = audit(&events);
    assert!(v.is_empty(), "legal trace flagged: {v:?}");
}

#[test]
fn legal_nonblocking_epochless_trace_is_silent() {
    let events = capture(true, |p, rt| {
        let bases = rt.malloc(1 << 16).expect("malloc");
        rt.barrier();
        if p.rank() == 0 {
            let src = vec![7u8; 1 << 14];
            let mut hs = Vec::new();
            for _ in 0..4 {
                hs.push(
                    rt.nb_acc(AccKind::Int(2), &src[..1 << 10], bases[1])
                        .unwrap(),
                );
            }
            rt.wait_all(hs).unwrap();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
    let v = audit(&events);
    assert!(v.is_empty(), "legal nb trace flagged: {v:?}");
}

#[test]
fn seeded_nested_lock_is_flagged_exactly_once() {
    let mut events = blocking_trace();
    // Re-acquire a lock rank 0 already holds: duplicate the first
    // acquire right after itself.
    let i = find(&events, 0, |k| matches!(k, EventKind::LockAcquire { .. }));
    let dup = events[i].clone();
    events.insert(i + 1, dup);
    let v = audit(&events);
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::NestedLock);
    assert_eq!(v[0].rank, 0);
}

#[test]
fn seeded_double_unlock_is_flagged_exactly_once() {
    let mut events = blocking_trace();
    let i = find(&events, 0, |k| matches!(k, EventKind::LockRelease { .. }));
    let dup = events[i].clone();
    events.insert(i + 1, dup);
    let v = audit(&events);
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::UnlockWithoutLock);
}

#[test]
fn seeded_dla_violation_is_flagged_exactly_once() {
    let mut events = blocking_trace();
    // A direct store outside any ARMCI_Access_begin/end region.
    let win = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::LocalAccess { win, .. } => Some(win),
            _ => None,
        })
        .expect("trace has a DLA access");
    let ts = events.last().unwrap().ts + 1.0;
    events.push(Event {
        rank: 0,
        ts,
        dur: 0.0,
        kind: EventKind::LocalAccess { win, write: true },
    });
    let v = audit(&events);
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::DlaViolation);
}

#[test]
fn seeded_staging_while_locked_is_flagged_exactly_once() {
    let mut events = blocking_trace();
    // Touch a staging buffer for a window while rank 0 holds a blocking
    // lock on it (§V-E1's self-deadlock pattern).
    let i = find(&events, 0, |k| matches!(k, EventKind::LockAcquire { .. }));
    let EventKind::LockAcquire { win, .. } = events[i].kind else {
        unreachable!()
    };
    let ts = events[i].ts;
    events.insert(
        i + 1,
        Event {
            rank: 0,
            ts,
            dur: 0.0,
            kind: EventKind::StageTouch {
                gmr: win,
                bytes: 64,
            },
        },
    );
    let v = audit(&events);
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::StagingWhileLocked);
}

#[test]
fn seeded_op_outside_epoch_is_flagged_exactly_once() {
    let mut events = blocking_trace();
    let win = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Rma { win, .. } => Some(win),
            _ => None,
        })
        .expect("trace has rma events");
    let ts = events.last().unwrap().ts + 1.0;
    // An RMA issued after every epoch on the window has closed.
    events.push(Event {
        rank: 0,
        ts,
        dur: 0.0,
        kind: EventKind::Rma {
            win,
            target: 1,
            kind: obs::OpKind::Put,
            bytes: 8,
        },
    });
    let v = audit(&events);
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::OpOutsideEpoch);
}

// ---------------------------------------------------------------------
// The intra-node shared-memory route under the same auditor
// ---------------------------------------------------------------------

/// The blocking workload with shm routing on: every transfer between
/// these two same-node ranks takes the load/store fast path.
fn shm_trace() -> Vec<Event> {
    capture_with(false, true, |p, rt| {
        let bases = rt.malloc(1 << 16).expect("malloc");
        rt.barrier();
        if p.rank() == 0 {
            let src = vec![3u8; 1 << 12];
            let mut dst = vec![0u8; 1 << 10];
            rt.put(&src, bases[1]).unwrap();
            rt.get(bases[1], &mut dst).unwrap();
            rt.acc(AccKind::Int(1), &src[..512], bases[1]).unwrap();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    })
}

#[test]
fn legal_shm_trace_is_silent_and_uses_the_fast_path() {
    let events = shm_trace();
    let shm_accesses = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ShmAccess { .. }))
        .count();
    assert!(
        shm_accesses >= 3,
        "same-node transfers did not take the shm route"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Rma { .. })),
        "intra-node traffic leaked onto the wire path"
    );
    let v = audit(&events);
    assert!(v.is_empty(), "legal shm trace flagged: {v:?}");
}

#[test]
fn seeded_shm_access_outside_win_sync_is_flagged_exactly_once() {
    let mut events = shm_trace();
    let (win, target) = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::ShmAccess { win, target, .. } => Some((win, target)),
            _ => None,
        })
        .expect("trace has shm accesses");
    let ts = events.last().unwrap().ts + 1.0;
    // A direct store into the peer's section after every epoch closed:
    // no lock covers it and no Win_sync re-established coherence.
    events.push(Event {
        rank: 0,
        ts,
        dur: 0.0,
        kind: EventKind::ShmAccess {
            win,
            target,
            write: true,
            bytes: 8,
        },
    });
    let v = audit(&events);
    assert_eq!(v.len(), 1, "expected exactly the seeded violation: {v:?}");
    assert_eq!(v[0].rule, Rule::ShmCoherence);
}
