//! Property tests: all ARMCI-MPI transfer methods are observationally
//! equivalent, and the auto method's safety net always holds.

use armci::{Armci, ArmciExt, IovDesc, StridedMethod};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Runtime, RuntimeConfig};
use proptest::prelude::*;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

const METHODS: [StridedMethod; 5] = [
    StridedMethod::IovConservative,
    StridedMethod::IovBatched { batch: 3 },
    StridedMethod::IovDatatype,
    StridedMethod::Direct,
    StridedMethod::Auto,
];

/// Strategy: a random 2- or 3-level strided shape with valid strides.
fn arb_strided() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>)> {
    // (count, src pads, dst pads)
    (1usize..3).prop_flat_map(|sl| {
        (
            proptest::collection::vec(1usize..5, sl + 1),
            proptest::collection::vec(0usize..3, sl),
            proptest::collection::vec(0usize..3, sl),
        )
            .prop_map(|(count, spads, dpads)| {
                let build = |pads: &[usize]| {
                    let mut strides = Vec::new();
                    let mut inner = count[0];
                    for (i, &pad) in pads.iter().enumerate() {
                        let s = inner + pad;
                        strides.push(s);
                        inner = s * count[i + 1];
                    }
                    strides
                };
                (build(&spads), build(&dpads), count)
            })
    })
}

/// Runs one strided put+get through a given method; returns the remote
/// memory image.
fn run_strided(
    method: StridedMethod,
    src_strides: Vec<usize>,
    dst_strides: Vec<usize>,
    count: Vec<usize>,
    payload_seed: u8,
) -> Vec<u8> {
    let cfg = Config {
        strided: method,
        iov: method,
        ..Default::default()
    };
    Runtime::run_with(2, quiet(), move |p| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        let extent_dst = armci::stride::extent(&dst_strides, &count);
        let extent_src = armci::stride::extent(&src_strides, &count);
        let bases = rt.malloc(extent_dst).unwrap();
        rt.barrier();
        let mut image = Vec::new();
        if p.rank() == 0 {
            let local: Vec<u8> = (0..extent_src)
                .map(|i| (i as u8).wrapping_mul(7).wrapping_add(payload_seed))
                .collect();
            rt.put_strided(&local, &src_strides, bases[1], &dst_strides, &count)
                .unwrap();
            let mut buf = vec![0u8; extent_dst];
            rt.get(bases[1], &mut buf).unwrap();
            image = buf;
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        image
    })
    .swap_remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// All five methods leave identical remote memory for any valid
    /// strided shape.
    #[test]
    fn strided_methods_equivalent(
        (src_strides, dst_strides, count) in arb_strided(),
        seed in 0u8..200
    ) {
        let reference = run_strided(
            StridedMethod::IovConservative,
            src_strides.clone(),
            dst_strides.clone(),
            count.clone(),
            seed,
        );
        for m in METHODS {
            let got = run_strided(m, src_strides.clone(), dst_strides.clone(), count.clone(), seed);
            prop_assert_eq!(&got, &reference, "method {:?}", m);
        }
    }
}

/// Strategy: random IOV descriptors, possibly overlapping.
fn arb_iov() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (1usize..9).prop_flat_map(|bytes| {
        let addrs = proptest::collection::vec(0usize..96, 1..10);
        (Just(bytes), addrs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The auto method accepts *any* descriptor — overlapping segments
    /// silently take the conservative path — and the final remote image
    /// matches the conservative reference (last-writer-wins per issue
    /// order is guaranteed by location consistency on a single origin).
    #[test]
    fn iov_auto_never_fails((bytes, addr_offsets) in arb_iov(), seed in 0u8..200) {
        let run = |method: StridedMethod| -> Vec<u8> {
            let offsets = addr_offsets.clone();
            let cfg = Config { iov: method, ..Default::default() };
            Runtime::run_with(2, quiet(), move |p| {
                let rt = ArmciMpi::with_config(p, cfg.clone());
                let bases = rt.malloc(256).unwrap();
                rt.barrier();
                let mut image = Vec::new();
                if p.rank() == 0 {
                    let n = offsets.len();
                    let local: Vec<u8> = (0..n * bytes)
                        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
                        .collect();
                    let desc = IovDesc {
                        rank: 1,
                        bytes,
                        local_offsets: (0..n).map(|i| i * bytes).collect(),
                        remote_addrs: offsets.iter().map(|&o| bases[1].addr + o).collect(),
                    };
                    rt.put_iov(&desc, &local).unwrap();
                    let mut buf = vec![0u8; 256];
                    rt.get(bases[1], &mut buf).unwrap();
                    image = buf;
                }
                rt.barrier();
                rt.free(bases[p.rank()]).unwrap();
                image
            })
            .swap_remove(0)
        };
        let auto = run(StridedMethod::Auto);
        let cons = run(StridedMethod::IovConservative);
        prop_assert_eq!(auto, cons);
    }

    /// NXTVAL-style counters stay exact under random interleavings of rmw,
    /// put and get traffic from several ranks.
    #[test]
    fn rmw_exact_under_mixed_traffic(ranks in 2usize..6, iters in 1usize..20) {
        let total = Runtime::run_with(ranks, quiet(), move |p| {
            let rt = ArmciMpi::new(p);
            let bases = rt.malloc(64).unwrap();
            rt.barrier();
            for i in 0..iters {
                rt.fetch_add(bases[0], 1).unwrap();
                // unrelated traffic on a disjoint region
                rt.put_f64s(&[i as f64], bases[0].offset(8 + 8 * p.rank())).unwrap();
                let _ = rt.get_f64s(bases[0].offset(8), 1).unwrap();
            }
            rt.barrier();
            let mut b = [0u8; 8];
            rt.get(bases[0], &mut b).unwrap();
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
            i64::from_le_bytes(b)
        });
        for t in &total {
            prop_assert_eq!(*t, (ranks * iters) as i64);
        }
    }
}
