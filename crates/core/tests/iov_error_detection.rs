//! §VI-B motivation: the batched and datatype methods *can* generate an
//! MPI error when segments overlap — "it is possible for data to already
//! be corrupted when this error is detected". With the runtime's
//! semantics checker on, the error is surfaced; the auto method avoids it
//! entirely by scanning first.

use armci::{Armci, ArmciError, IovDesc, StridedMethod};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Proc, Runtime, RuntimeConfig};

fn overlapping_desc(base: usize) -> IovDesc {
    IovDesc {
        rank: 1,
        bytes: 8,
        local_offsets: vec![0, 8],
        remote_addrs: vec![base, base + 4], // overlap!
    }
}

fn put_overlapping(method: StridedMethod) -> Result<(), ArmciError> {
    let cfg = Config {
        iov: method,
        ..Default::default()
    };
    Runtime::run_with(2, RuntimeConfig::default(), move |p: &Proc| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        let res = if p.rank() == 0 {
            rt.put_iov(&overlapping_desc(bases[1].addr), &[1u8; 16])
        } else {
            Ok(())
        };
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        res
    })
    .swap_remove(0)
}

#[test]
fn batched_overlap_is_detected_as_mpi_error() {
    let err = put_overlapping(StridedMethod::IovBatched { batch: 0 }).unwrap_err();
    assert!(
        matches!(
            err,
            ArmciError::Mpi(mpisim::MpiError::ConflictingAccess { .. })
        ),
        "{err}"
    );
}

#[test]
fn datatype_overlap_is_detected_as_mpi_error() {
    let err = put_overlapping(StridedMethod::IovDatatype).unwrap_err();
    assert!(
        matches!(
            err,
            ArmciError::Mpi(mpisim::MpiError::ConflictingAccess { .. })
        ),
        "{err}"
    );
}

#[test]
fn auto_avoids_the_error_via_conflict_scan() {
    put_overlapping(StridedMethod::Auto).unwrap();
}

#[test]
fn conservative_handles_overlap_by_design() {
    put_overlapping(StridedMethod::IovConservative).unwrap();
}
