//! Focused tests of the Latham queueing-mutex protocol (§V-D).

use armci::Armci;
use armci_mpi::ArmciMpi;
use mpisim::{Proc, Runtime, RuntimeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

#[test]
fn handoff_forwards_in_cyclic_order() {
    // Stage a known waiting queue with real-time sleeps, then verify the
    // unlocking process forwards the mutex starting at rank i+1 (the
    // paper's fairness scan). Rank 0 holds; ranks 1 and 2 enqueue (in
    // that staged order or any order — both are > 0, and the scan starts
    // at 1); rank 1 must be granted before rank 2.
    let order = Arc::new(AtomicUsize::new(0));
    let grants: Vec<(usize, usize)> = {
        let order = Arc::clone(&order);
        Runtime::run_with(3, quiet(), move |p: &Proc| {
            let rt = ArmciMpi::new(p);
            let h = rt.create_mutexes(1).unwrap();
            rt.barrier();
            match p.rank() {
                0 => {
                    rt.lock_mutex(h, 0, 0).unwrap();
                    rt.barrier(); // everyone knows rank 0 holds
                                  // give ranks 1 and 2 time to enqueue
                    std::thread::sleep(Duration::from_millis(120));
                    rt.unlock_mutex(h, 0, 0).unwrap();
                }
                _ => {
                    rt.barrier();
                    // stagger the enqueues so both are queued before
                    // rank 0 releases
                    std::thread::sleep(Duration::from_millis(10 * p.rank() as u64));
                    rt.lock_mutex(h, 0, 0).unwrap();
                    std::thread::sleep(Duration::from_millis(5));
                    rt.unlock_mutex(h, 0, 0).unwrap();
                }
            }
            let seq = order.fetch_add(1, Ordering::SeqCst);
            rt.barrier();
            rt.destroy_mutexes(h).unwrap();
            (p.rank(), seq)
        })
    };
    // Rank 1 must complete its critical section before rank 2 (fair scan
    // from holder+1). Rank 0 finished first by construction.
    let seq_of = |r: usize| grants.iter().find(|&&(rk, _)| rk == r).unwrap().1;
    assert!(
        seq_of(1) < seq_of(2),
        "rank 1 should be granted before rank 2: {grants:?}"
    );
}

#[test]
fn waiters_block_without_polling() {
    // A blocked locker sits in a wildcard receive; when the holder never
    // releases for a while, the waiter makes no progress but also burns
    // no virtual time beyond its enqueue epoch.
    Runtime::run_with(2, RuntimeConfig::default(), |p: &Proc| {
        let rt = ArmciMpi::new(p);
        let h = rt.create_mutexes(1).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.lock_mutex(h, 0, 0).unwrap();
            rt.barrier(); // waiter may now enqueue
            std::thread::sleep(Duration::from_millis(50));
            let before_release = p.clock().now();
            rt.unlock_mutex(h, 0, 0).unwrap();
            let _ = before_release;
        } else {
            rt.barrier();
            let t0 = p.clock().now();
            rt.lock_mutex(h, 0, 0).unwrap();
            let waited_virtual = p.clock().now() - t0;
            rt.unlock_mutex(h, 0, 0).unwrap();
            // the wait itself is a local blocking receive: it advances
            // the virtual clock only by the enqueue epoch + message
            // latency, not by busy-poll iterations.
            assert!(
                waited_virtual < 1e-3,
                "waiter burned {waited_virtual}s of virtual time"
            );
        }
        rt.barrier();
        rt.destroy_mutexes(h).unwrap();
    });
}

#[test]
fn multiple_mutexes_per_host_are_independent() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::new(p);
        let h = rt.create_mutexes(3).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            // hold mutex 0 on host 1 while the peer uses mutex 1 on the
            // same host — no interference
            rt.lock_mutex(h, 0, 1).unwrap();
            rt.barrier();
            rt.barrier();
            rt.unlock_mutex(h, 0, 1).unwrap();
        } else {
            rt.barrier();
            rt.lock_mutex(h, 1, 1).unwrap();
            rt.unlock_mutex(h, 1, 1).unwrap();
            rt.lock_mutex(h, 2, 0).unwrap();
            rt.unlock_mutex(h, 2, 0).unwrap();
            rt.barrier();
        }
        rt.barrier();
        rt.destroy_mutexes(h).unwrap();
    });
}

#[test]
fn two_mutex_sets_coexist() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::new(p);
        let h1 = rt.create_mutexes(1).unwrap();
        let h2 = rt.create_mutexes(1).unwrap();
        assert_ne!(h1, h2);
        rt.barrier();
        if p.rank() == 0 {
            rt.lock_mutex(h1, 0, 0).unwrap();
            rt.lock_mutex(h2, 0, 0).unwrap();
            rt.unlock_mutex(h1, 0, 0).unwrap();
            rt.unlock_mutex(h2, 0, 0).unwrap();
        }
        rt.barrier();
        rt.destroy_mutexes(h2).unwrap();
        rt.destroy_mutexes(h1).unwrap();
        let _ = p;
    });
}
