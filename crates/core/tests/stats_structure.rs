//! Structural tests via the OpStats counters: verify *how* each transfer
//! method maps onto MPI operations and epochs — one epoch per op for
//! conservative, one epoch for batched/datatype, flushes instead of
//! epochs in epochless mode, and the §V-D RMW protocol's mutex+2-epoch
//! shape.

use armci::{Armci, ArmciExt, IovDesc, StridedMethod};
use armci_mpi::{ArmciMpi, Config, OpStats};
use mpisim::{Proc, Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

/// Runs one 8-segment strided put under `cfg` and returns rank 0's
/// statistics delta.
fn strided_stats(cfg: Config) -> OpStats {
    Runtime::run_with(2, quiet(), move |p: &Proc| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        let bases = rt.malloc(8 * 32).unwrap();
        rt.barrier();
        let mut out = OpStats::default();
        if p.rank() == 0 {
            rt.reset_stats();
            let local = vec![1u8; 8 * 16];
            rt.put_strided(&local, &[16], bases[1], &[32], &[16, 8])
                .unwrap();
            out = rt.stats();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        out
    })
    .swap_remove(0)
}

#[test]
fn conservative_opens_one_epoch_per_segment() {
    let s = strided_stats(Config {
        strided: StridedMethod::IovConservative,
        ..Default::default()
    });
    assert_eq!(s.epochs, 8);
    assert_eq!(s.puts, 8);
    assert_eq!(s.bytes_put, 128);
}

#[test]
fn batched_opens_one_epoch_for_all_segments() {
    let s = strided_stats(Config {
        strided: StridedMethod::IovBatched { batch: 0 },
        ..Default::default()
    });
    assert_eq!(s.epochs, 1);
    assert_eq!(s.puts, 8);
}

#[test]
fn batched_respects_the_b_parameter() {
    let s = strided_stats(Config {
        strided: StridedMethod::IovBatched { batch: 3 },
        ..Default::default()
    });
    // 8 segments in chunks of 3 → 3 epochs
    assert_eq!(s.epochs, 3);
    assert_eq!(s.puts, 8);
}

#[test]
fn datatype_methods_issue_single_operation() {
    for m in [
        StridedMethod::IovDatatype,
        StridedMethod::Direct,
        StridedMethod::Auto,
    ] {
        let s = strided_stats(Config {
            strided: m,
            iov: m,
            ..Default::default()
        });
        assert_eq!(s.epochs, 1, "{m:?}");
        assert_eq!(s.puts, 1, "{m:?}");
        assert_eq!(s.bytes_put, 128, "{m:?}");
    }
}

#[test]
fn epochless_mode_flushes_instead_of_locking() {
    let s = strided_stats(Config {
        strided: StridedMethod::Direct,
        epochless: true,
        ..Default::default()
    });
    assert_eq!(s.epochs, 0);
    assert_eq!(s.flushes, 1);
    assert_eq!(s.puts, 1);
}

#[test]
fn rmw_protocol_shape_mpi2_vs_mpi3() {
    let shape = |cfg: Config| -> OpStats {
        Runtime::run_with(2, quiet(), move |p: &Proc| {
            let rt = ArmciMpi::with_config(p, cfg.clone());
            let bases = rt.malloc(8).unwrap();
            rt.barrier();
            let mut out = OpStats::default();
            if p.rank() == 0 {
                rt.reset_stats();
                rt.fetch_add(bases[1], 1).unwrap();
                out = rt.stats();
            }
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
            out
        })
        .swap_remove(0)
    };
    // MPI-2: one mutex acquisition, two exclusive data epochs (read +
    // write) — plus the mutex's own internal epochs, counted inside the
    // MutexSet's window operations (not via epoch_begin), so `epochs`
    // counts exactly the two data epochs. Native atomics are the default
    // now, so the MPI-2 protocol shape requires the explicit fallback.
    let mpi2 = shape(Config {
        atomics: armci_mpi::AtomicsMode::MutexFallback,
        ..Default::default()
    });
    assert_eq!(mpi2.rmws, 1);
    assert_eq!(mpi2.mutex_locks, 1);
    assert_eq!(mpi2.rmw_mutex_fallback, 1);
    assert_eq!(mpi2.rmw_native, 0);
    assert_eq!(mpi2.gets, 1);
    assert_eq!(mpi2.puts, 1);
    assert_eq!(mpi2.epochs, 2);
    // MPI-3: a single atomic — no mutex, no extra data ops. This is the
    // default path (Config::atomics = Auto resolves to native here).
    let mpi3 = shape(Config::default());
    assert_eq!(mpi3.rmws, 1);
    assert_eq!(mpi3.mutex_locks, 0);
    assert_eq!(mpi3.rmw_native, 1);
    assert_eq!(mpi3.rmw_mutex_fallback, 0);
    assert_eq!(mpi3.gets, 0);
    assert_eq!(mpi3.puts, 0);
    // The legacy switch still forces the native path too.
    let legacy = shape(Config {
        use_mpi3_rmw: true,
        ..Default::default()
    });
    assert_eq!(legacy.rmws, 1);
    assert_eq!(legacy.rmw_native, 1);
    assert_eq!(legacy.mutex_locks, 0);
}

#[test]
fn byte_accounting_matches_traffic() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::new(p);
        let bases = rt.malloc(1024).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.reset_stats();
            rt.put_f64s(&[0.0; 16], bases[1]).unwrap(); // 128 B
            let _ = rt.get_f64s(bases[1], 4).unwrap(); // 32 B
            rt.acc_f64s(2.0, &[1.0; 8], bases[1]).unwrap(); // 64 B
            let desc = IovDesc {
                rank: 1,
                bytes: 16,
                local_offsets: vec![0, 16],
                remote_addrs: vec![bases[1].addr + 256, bases[1].addr + 512],
            };
            rt.put_iov(&desc, &[7u8; 32]).unwrap(); // 32 B
            let s = rt.stats();
            assert_eq!(s.bytes_put, 128 + 32);
            assert_eq!(s.bytes_got, 32);
            assert_eq!(s.bytes_acc, 64);
            assert_eq!(s.rmws, 0);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}
