//! Nonblocking transfer engine: aggregation, overlap, and the
//! serialisation rules that keep deferred operations safe.
//!
//! The headline test demonstrates the §VIII-B(3) claim: N nonblocking
//! operations to N distinct targets in epochless mode complete in far
//! less virtual time than N sequential blocking epochs, because the
//! engine keeps one flush-based aggregate epoch open per target and
//! only pays per-op issue overhead up front.

use armci::{Armci, ArmciExt, NbHandle};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Proc, Runtime, RuntimeConfig};
use proptest::prelude::*;

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

// Every layout in this file fits on one node, so the intra-node
// shared-memory bypass would route ops around the deferred engine whose
// counters and overlap schedule these tests assert. Pin the wire path;
// shm-on equivalence is covered in shm_subsystem.rs.
fn epochless() -> Config {
    Config {
        epochless: true,
        shm: false,
        ..Default::default()
    }
}

fn mpi2() -> Config {
    Config {
        shm: false,
        ..Default::default()
    }
}

// ----------------------------------------------------------------------
// Overlap: distinct targets, virtual time + stage stats
// ----------------------------------------------------------------------

const OVERLAP_RANKS: usize = 5;
const OVERLAP_BYTES: usize = 1 << 20;

/// Rank 0 moves `OVERLAP_BYTES` to every peer; returns rank 0's virtual
/// elapsed time for the transfer phase.
fn timed_fanout(nonblocking: bool) -> f64 {
    let res = Runtime::run_with(OVERLAP_RANKS, RuntimeConfig::default(), move |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let bases = rt.malloc(OVERLAP_BYTES).unwrap();
        rt.barrier();
        let mut elapsed = 0.0;
        if p.rank() == 0 {
            let src = vec![7u8; OVERLAP_BYTES];
            let t0 = p.world().clock_now();
            if nonblocking {
                let mut handles = Vec::new();
                for base in &bases[1..] {
                    handles.push(rt.nb_put(&src, *base).unwrap());
                }
                rt.wait_all(handles).unwrap();
            } else {
                for base in &bases[1..] {
                    rt.put(&src, *base).unwrap();
                }
            }
            elapsed = p.world().clock_now() - t0;

            if nonblocking {
                let g = rt.stage_stats();
                // One aggregate epoch per distinct target, all concurrent.
                assert_eq!(g.acquires as usize, OVERLAP_RANKS - 1);
                assert_eq!(g.nb_submitted as usize, OVERLAP_RANKS - 1);
                assert_eq!(g.nb_aggregated, 0);
                assert_eq!(g.completes as usize, OVERLAP_RANKS - 1);
                assert_eq!(g.nb_waits as usize, OVERLAP_RANKS - 1);
            }
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        elapsed
    });
    res[0]
}

#[test]
fn nb_fanout_overlaps_where_blocking_serialises() {
    let blocking = timed_fanout(false);
    let nb = timed_fanout(true);
    assert!(blocking > 0.0 && nb > 0.0, "virtual clock did not advance");
    // Blocking pays N full transfer costs back to back; the nonblocking
    // fan-out pays N issue overheads plus ~one transfer cost. Require a
    // decisive win, not a rounding artefact.
    assert!(
        nb < blocking * 0.5,
        "no overlap: nonblocking {nb} s vs blocking {blocking} s"
    );
}

// ----------------------------------------------------------------------
// Aggregation: repeated ops to one target share an epoch (MPI-2)
// ----------------------------------------------------------------------

#[test]
fn nb_ops_to_same_target_aggregate_into_one_epoch() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, mpi2());
        let bases = rt.malloc(64).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let mut handles = Vec::new();
            for i in 0..4usize {
                let v = [i as u8 + 1; 8];
                handles.push(rt.nb_put(&v, bases[1].offset(i * 8)).unwrap());
            }
            let g = rt.stage_stats();
            assert_eq!(g.acquires, 1, "same-target ops must share one epoch");
            assert_eq!(g.nb_submitted, 4);
            assert_eq!(g.nb_aggregated, 3);
            assert_eq!(g.completes, 0, "nothing completed before wait");
            rt.wait_all(handles).unwrap();
            let g = rt.stage_stats();
            assert_eq!(g.completes, 1, "one unlock retires the whole epoch");
        }
        rt.barrier();
        if p.rank() == 1 {
            rt.access(bases[1], 32, &mut |b| {
                for i in 0..4 {
                    assert_eq!(&b[i * 8..i * 8 + 8], &[i as u8 + 1; 8]);
                }
            })
            .unwrap();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn mpi2_conflicting_ops_split_the_epoch() {
    // Two puts to the same bytes cannot share an MPI-2 epoch (conflicting
    // accesses within one epoch are erroneous): the second forces the
    // first epoch to retire and opens a fresh one. Program order is
    // preserved, so the later write wins.
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, mpi2());
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let h1 = rt.nb_put(&[1u8; 8], bases[1]).unwrap();
            let h2 = rt.nb_put(&[2u8; 8], bases[1]).unwrap();
            let g = rt.stage_stats();
            assert_eq!(g.acquires, 2, "conflicting ops must not aggregate");
            assert_eq!(g.completes, 1, "first epoch retired on conflict");
            rt.wait_all(vec![h1, h2]).unwrap();
        }
        rt.barrier();
        if p.rank() == 1 {
            rt.access(bases[1], 8, &mut |b| assert_eq!(b, &[2u8; 8]))
                .unwrap();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn mpi2_second_target_closes_first_epoch() {
    // MPI-2 mode holds at most one aggregate epoch: opening a second
    // target quiesces the first (no hold-and-wait deadlock), and waiting
    // on the already-retired handle is still Ok.
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, mpi2());
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let h1 = rt.nb_put(&[1u8; 8], bases[1]).unwrap();
            let h2 = rt.nb_put(&[2u8; 8], bases[2]).unwrap();
            let g = rt.stage_stats();
            assert_eq!(g.acquires, 2);
            assert_eq!(g.completes, 1, "first epoch closed on second acquire");
            rt.wait(h1).unwrap();
            rt.wait(h2).unwrap();
            assert_eq!(rt.stage_stats().completes, 2);
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

// ----------------------------------------------------------------------
// Serialisation rules: blocking ops, DLA, staging, RMW
// ----------------------------------------------------------------------

#[test]
fn blocking_staging_copy_quiesces_pending_nb() {
    // A staged copy (access of the local window + blocking put) while a
    // nonblocking put is in flight must serialise, not tear.
    Runtime::run_with(3, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let bases = rt.malloc(16).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            rt.access_mut(bases[0], 16, &mut |b| b.fill(9)).unwrap();
            let h = rt.nb_put(&[5u8; 16], bases[1]).unwrap();
            assert_eq!(rt.stage_stats().completes, 0);
            // copy() stages through local access, which retires the
            // open aggregate epoch first (one complete), then runs its
            // own blocking put epoch (a second complete).
            rt.copy(bases[0], bases[2], 16).unwrap();
            assert_eq!(rt.stage_stats().completes, 2);
            // The handle was resolved by the quiesce; wait is a no-op Ok.
            rt.wait(h).unwrap();
        }
        rt.barrier();
        let expect = match p.rank() {
            1 => Some(5u8),
            2 => Some(9u8),
            _ => None,
        };
        if let Some(v) = expect {
            rt.access(bases[p.rank()], 16, &mut |b| {
                assert!(b.iter().all(|&x| x == v))
            })
            .unwrap();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn dla_access_serialises_against_outstanding_nb() {
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let bases = rt.malloc(8).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let h = rt.nb_put(&[3u8; 8], bases[1]).unwrap();
            // Direct local access is a synchronisation point: the open
            // epoch is retired before the closure runs.
            rt.access_mut(bases[0], 8, &mut |b| b.fill(1)).unwrap();
            let g = rt.stage_stats();
            assert_eq!(g.acquires, 1);
            assert_eq!(g.completes, 1, "access must quiesce in-flight nb ops");
            rt.wait(h).unwrap();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
    });
}

#[test]
fn rmw_quiesces_only_its_own_allocation() {
    // NXTVAL-style counters live in their own GMR; an RMW there must not
    // retire in-flight transfers on unrelated arrays (that would destroy
    // the overlap schedule the proxy relies on).
    Runtime::run_with(2, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, epochless());
        let data = rt.malloc(64).unwrap();
        let counter = rt.malloc(8).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let h = rt.nb_put(&[4u8; 64], data[1]).unwrap();
            rt.fetch_add(counter[0], 1).unwrap();
            let g = rt.stage_stats();
            assert_eq!(
                g.completes, 0,
                "RMW on an unrelated GMR must leave the data epoch open"
            );
            rt.wait(h).unwrap();
            assert_eq!(rt.stage_stats().completes, 1);
        }
        rt.barrier();
        rt.free(data[p.rank()]).unwrap();
        rt.free(counter[p.rank()]).unwrap();
    });
}

#[test]
fn wait_on_unknown_handle_is_an_error() {
    Runtime::run_with(1, quiet(), |p: &Proc| {
        let rt = ArmciMpi::with_config(p, mpi2());
        assert!(rt.wait(NbHandle::deferred(997)).is_err());
        // Eager handles are always fine.
        rt.wait(NbHandle::eager()).unwrap();
    });
}

// ----------------------------------------------------------------------
// Property: interleaved nonblocking and blocking puts are
// observationally equivalent to all-blocking, in both lock disciplines
// ----------------------------------------------------------------------

const SLOTS: usize = 8;

/// Applies a schedule of 8-byte slot writes from rank 0, flagged ops via
/// the nonblocking path, and returns the final memory images of ranks 1
/// and 2.
fn run_schedule(ops: Vec<(usize, usize, u8, usize)>, epochless_mode: bool) -> Vec<Vec<u8>> {
    Runtime::run_with(3, quiet(), move |p: &Proc| {
        let cfg = if epochless_mode {
            epochless()
        } else {
            Config::default()
        };
        let rt = ArmciMpi::with_config(p, cfg);
        let bases = rt.malloc(SLOTS * 8).unwrap();
        rt.barrier();
        if p.rank() == 0 {
            let mut handles = Vec::new();
            for &(target, slot, val, nb) in &ops {
                let dst = bases[1 + target % 2].offset((slot % SLOTS) * 8);
                let payload = [val; 8];
                if nb != 0 {
                    handles.push(rt.nb_put(&payload, dst).unwrap());
                } else {
                    rt.put(&payload, dst).unwrap();
                }
            }
            rt.wait_all(handles).unwrap();
        }
        rt.barrier();
        let mut image = vec![0u8; SLOTS * 8];
        if p.rank() > 0 {
            rt.access(bases[p.rank()], SLOTS * 8, &mut |b| {
                image.copy_from_slice(b)
            })
            .unwrap();
        }
        rt.barrier();
        rt.free(bases[p.rank()]).unwrap();
        image
    })
    .split_off(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn nb_schedule_equivalent_to_blocking(
        ops in proptest::collection::vec(
            (0usize..2, 0usize..SLOTS, 0u8..255, 0usize..2),
            1..16,
        ),
    ) {
        let blocking: Vec<_> = ops
            .iter()
            .map(|&(t, s, v, _)| (t, s, v, 0))
            .collect();
        for mode in [false, true] {
            let want = run_schedule(blocking.clone(), mode);
            let got = run_schedule(ops.clone(), mode);
            prop_assert_eq!(&got, &want, "epochless={}", mode);
        }
    }
}
