//! Rank-scaling series per driver, priced through scalesim's
//! discrete-event models.
//!
//! The 4-rank runtime runs in `BENCH_workloads` measure real traffic;
//! this module extends each driver's *contended resource* to the scale
//! the thread-per-rank simulator cannot reach (10⁵–10⁶ clients):
//!
//! * **kv** — the hot parameter is a serial fetch-and-add server. The
//!   DES prices its service time per atomics discipline: `native`
//!   (hardware MPI-3 FOP), `mutex` (the lock/get/put/unlock NXTVAL
//!   window from the profile model), `sharded` (per-node shards at shm
//!   atomic cost), `channel` (doorbell + CQ-poll software NIC path).
//! * **graph** — hub accumulates behave like the same serial server
//!   with per-vertex compute between visits; `native` vs `sharded`
//!   shows what a combining tree buys an irregular kernel.
//! * **stencil** — no serial resource at all: the halo exchange is
//!   nearest-neighbour, so weak scaling is flat. Priced analytically
//!   from the platform's put/get link parameters as a sanity baseline
//!   against the two contended drivers.

use nwchem_proxy::profile::{nxtval_service, Backend};
use scalesim::{simulate, simulate_sharded, ShardedCounter, SimConfig};
use simnet::Platform;

/// One point of a scaling series (`source: "des"` rows of
/// `BENCH_workloads.json`).
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Driver: `graph`, `stencil`, or `kv`.
    pub driver: &'static str,
    /// Contention discipline priced into the serial resource:
    /// `native`, `mutex`, `sharded`, or `channel`.
    pub discipline: &'static str,
    /// Simulated clients (ranks).
    pub clients: usize,
    /// Modelled makespan, seconds.
    pub makespan_s: f64,
    /// Completed operations per second across the system.
    pub throughput_per_s: f64,
    /// Utilisation of the contended resource (0 for stencil).
    pub utilisation: f64,
}

/// Client counts for the KV series — up to 10⁶ simulated clients.
pub const KV_CLIENTS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];
/// Client counts for the graph hub series.
pub const GRAPH_CLIENTS: [usize; 4] = [256, 4_096, 65_536, 1_048_576];
/// Rank counts for the stencil weak-scaling series.
pub const STENCIL_RANKS: [usize; 4] = [64, 1_024, 16_384, 262_144];
/// Hot-key operations per simulated KV client.
pub const KV_OPS_PER_CLIENT: usize = 4;
/// Hub updates per simulated graph client.
pub const GRAPH_OPS_PER_CLIENT: usize = 8;
/// Per-rank block edge for stencil weak scaling (block stays fixed as
/// ranks grow).
pub const STENCIL_BLOCK_EDGE: usize = 128;
/// Stencil sweeps priced in the analytic model.
pub const STENCIL_MODEL_ITERS: usize = 8;

/// Service time of one RMW at the contended resource under a
/// discipline. `sharded` prices the per-shard service; the shard fan-in
/// is modelled by `simulate_sharded`.
pub fn rmw_service_s(platform: &Platform, discipline: &str) -> f64 {
    match discipline {
        "mutex" => nxtval_service(platform, Backend::ArmciMpi),
        "sharded" => platform.shm.atomic_cost(),
        "channel" => platform.channel.atomic_cost(),
        _ => platform.mpi.rmw_latency,
    }
}

fn serial_server_series(
    platform: &Platform,
    driver: &'static str,
    clients: &[usize],
    ops_per_client: usize,
    think_s: f64,
    disciplines: &[&'static str],
) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    for &discipline in disciplines {
        let service = rmw_service_s(platform, discipline);
        for &n in clients {
            let cfg = SimConfig {
                nprocs: n,
                ntasks: n * ops_per_client,
                task_compute: think_s,
                task_comm: 0.0,
                nxtval_service: service,
                nxtval_latency: 2.0 * platform.mpi.rmw_latency,
                congestion_scale: None,
                startup: 0.0,
                iterations: 1,
            };
            let res = if discipline == "sharded" {
                let shard = ShardedCounter {
                    ranks_per_node: (platform.sockets_per_node * platform.cores_per_socket).max(1)
                        as usize,
                    block: ops_per_client,
                    shard_service: platform.shm.atomic_cost(),
                    shard_latency: platform.shm.win_sync,
                };
                simulate_sharded(&cfg, &shard)
            } else {
                simulate(&cfg)
            };
            rows.push(ScaleRow {
                driver,
                discipline,
                clients: n,
                makespan_s: res.makespan,
                throughput_per_s: (n * ops_per_client) as f64 / res.makespan.max(1e-12),
                utilisation: res.counter_utilisation,
            });
        }
    }
    rows
}

/// KV/parameter-server series: every operation visits the hot counter.
pub fn kv_scale(platform: &Platform) -> Vec<ScaleRow> {
    serial_server_series(
        platform,
        "kv",
        &KV_CLIENTS,
        KV_OPS_PER_CLIENT,
        100e-6,
        &["native", "mutex", "sharded", "channel"],
    )
}

/// Graph hub series: hub accumulates funnel into one owner.
pub fn graph_scale(platform: &Platform) -> Vec<ScaleRow> {
    serial_server_series(
        platform,
        "graph",
        &GRAPH_CLIENTS,
        GRAPH_OPS_PER_CLIENT,
        20e-6,
        &["native", "mutex", "sharded"],
    )
}

/// Stencil weak-scaling series: fixed block per rank, four halo faces
/// of `STENCIL_BLOCK_EDGE` cells exchanged per sweep. No contended
/// resource, so the modelled makespan is flat in the rank count — the
/// baseline the two serial-server drivers are judged against.
pub fn stencil_scale(platform: &Platform) -> Vec<ScaleRow> {
    let cells = (STENCIL_BLOCK_EDGE * STENCIL_BLOCK_EDGE) as f64;
    let face_bytes = STENCIL_BLOCK_EDGE * 8;
    // 5-point stencil: ~5 flops/cell against the platform core rate.
    let compute_s = cells * 5.0 / platform.compute.flops_per_core;
    let halo_s = 4.0 * (platform.mpi.get.xfer_time(face_bytes) + platform.mpi.op_overhead);
    let sweep = compute_s + halo_s;
    STENCIL_RANKS
        .iter()
        .map(|&n| ScaleRow {
            driver: "stencil",
            discipline: "native",
            clients: n,
            makespan_s: sweep * STENCIL_MODEL_ITERS as f64,
            throughput_per_s: cells * n as f64 * STENCIL_MODEL_ITERS as f64
                / (sweep * STENCIL_MODEL_ITERS as f64),
            utilisation: 0.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::PlatformId;

    fn platform() -> Platform {
        Platform::get(PlatformId::InfiniBandCluster)
    }

    #[test]
    fn kv_native_beats_mutex_at_scale() {
        // Debug-build tests price a truncated series; the full
        // 10^6-client sweep runs in the release-mode figures job.
        let p = platform();
        let rows = serial_server_series(
            &p,
            "kv",
            &[1_000, 10_000],
            KV_OPS_PER_CLIENT,
            100e-6,
            &["native", "mutex", "sharded"],
        );
        let pick = |d: &str, n: usize| {
            rows.iter()
                .find(|r| r.discipline == d && r.clients == n)
                .unwrap()
                .makespan_s
        };
        assert!(
            pick("mutex", 10_000) > 1.5 * pick("native", 10_000),
            "mutex NXTVAL should serialise far worse than native FOP"
        );
        assert!(
            pick("sharded", 10_000) < pick("native", 10_000),
            "sharding must relieve the serial server"
        );
    }

    #[test]
    fn graph_series_covers_disciplines() {
        let p = platform();
        let rows = serial_server_series(
            &p,
            "graph",
            &[256, 1_024],
            GRAPH_OPS_PER_CLIENT,
            20e-6,
            &["native", "mutex", "sharded"],
        );
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.makespan_s > 0.0));
    }

    #[test]
    fn stencil_weak_scaling_is_flat() {
        let rows = stencil_scale(&platform());
        let first = rows.first().unwrap().makespan_s;
        assert!(rows.iter().all(|r| (r.makespan_s - first).abs() < 1e-12));
    }
}
