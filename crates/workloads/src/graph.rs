//! Graph kernel driver: BFS + fixed-point PageRank over a deterministic
//! R-MAT edge list stored in Global Arrays.
//!
//! The graph lives in GA as CSR: an `I64` offsets array of length
//! `n + 1` and an `I64` adjacency array of length `2m` (each undirected
//! edge appears in both endpoint lists). Traversal drives the runtime
//! with exactly the traffic the dense CCSD proxy never produces:
//!
//! * **fine-grained random gets** — every frontier vertex fetches its
//!   offset pair and adjacency slice from whichever rank owns it;
//! * **hot-spot RMW** — BFS claims vertices with `read_inc` on a claim
//!   array, and the R-MAT skew concentrates those claims on the hubs
//!   (low vertex ids, hence rank 0's block);
//! * **hot-spot accumulates** — PageRank pushes `acc` contributions
//!   along every edge, again hub-concentrated;
//! * **irregular compute skew** — optional per-rank slowdown
//!   (`GraphOpts::skew`) so the progress/wait analyzers see stragglers.
//!
//! Determinism and the oracle: BFS is *level-synchronous*, so the
//! distance vector is independent of which racing claimant wins a
//! vertex — distances are checked bit-exact against a serial BFS and
//! the parent tree is checked for *validity* (parent edge exists,
//! `dist[parent] + 1 == dist[v]`). PageRank runs in 16.16 fixed point:
//! integer accumulate is associative and commutative, so the final
//! vector is bit-exact against the serial reference no matter how the
//! runtime ordered the accs.

use crate::SplitMix64;
use armci::Armci;
use armci_mpi::{ArmciMpi, Config};
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};

/// Fixed-point scale for PageRank ranks (16.16).
pub const PR_SCALE: i64 = 1 << 16;
/// Damping factor numerator/denominator (`alpha = 0.85`).
pub const PR_ALPHA_NUM: i64 = 85;
pub const PR_ALPHA_DEN: i64 = 100;

/// Parameters of one graph-kernel run. All fields documented so sweeps
/// are reproducible from the CLI; `Default` is the CI-sized instance.
#[derive(Debug, Clone)]
pub struct GraphOpts {
    /// log2 of the vertex count (R-MAT "scale"). Default 6 → 64 vertices.
    pub scale: u32,
    /// Undirected edges per vertex (R-MAT "edge factor"). Default 8.
    pub edge_factor: usize,
    /// R-MAT quadrant probabilities (a, b, c); d is the remainder.
    /// Defaults to the Graph500 (0.57, 0.19, 0.19) skew.
    pub rmat: (f64, f64, f64),
    /// Instance seed: edge list and everything derived from it.
    pub seed: u64,
    /// BFS source vertex. Default 0 (a hub under R-MAT skew).
    pub root: usize,
    /// PageRank sweeps. Default 3.
    pub pr_iters: usize,
    /// Modelled compute per processed vertex, seconds. Default 0 (pure
    /// communication).
    pub vertex_compute_s: f64,
    /// Straggler skew: rank `r` runs its per-vertex compute
    /// `1 + skew·r/(P−1)` slower (same formula as the CCSD proxy), so
    /// the wait-state attributor has stragglers to blame. Default 0.
    pub skew: f64,
}

impl Default for GraphOpts {
    fn default() -> Self {
        GraphOpts {
            scale: 6,
            edge_factor: 8,
            rmat: (0.57, 0.19, 0.19),
            seed: 0xA11CE,
            root: 0,
            pr_iters: 3,
            vertex_compute_s: 0.0,
            skew: 0.0,
        }
    }
}

impl GraphOpts {
    /// Vertex count `2^scale`.
    pub fn nvertices(&self) -> usize {
        1usize << self.scale
    }

    /// Undirected edge count.
    pub fn nedges(&self) -> usize {
        self.nvertices() * self.edge_factor
    }
}

/// Per-rank outcome of [`run_graph`]. Every rank returns the full
/// distance/parent/rank vectors (fetched after the final sync), so the
/// oracle can also check cross-rank agreement.
#[derive(Debug, Clone)]
pub struct GraphResult {
    /// BFS hop distance per vertex; `-1` for unreached.
    pub dist: Vec<i64>,
    /// BFS parent per vertex; `root` for the root, `-1` for unreached.
    pub parent: Vec<i64>,
    /// Fixed-point (16.16) PageRank vector after `pr_iters` sweeps.
    pub pagerank: Vec<i64>,
    /// Virtual seconds this rank spent in the run.
    pub elapsed_s: f64,
    /// One-sided operations this rank issued (gets + accs + rmws).
    pub ops: u64,
}

/// Deterministic R-MAT-style edge list: `m` undirected edges over
/// `2^scale` vertices, skewed into low vertex ids. Self-loops are kept
/// (CSR handles them; BFS/PR treat them like any edge).
pub fn rmat_edges(opts: &GraphOpts) -> Vec<(usize, usize)> {
    let (a, b, c) = opts.rmat;
    let mut rng = SplitMix64::new(opts.seed);
    let mut edges = Vec::with_capacity(opts.nedges());
    for _ in 0..opts.nedges() {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..opts.scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < a {
                // quadrant (0,0): both high bits clear
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    edges
}

/// CSR built from an undirected edge list: `offsets[n + 1]`, adjacency
/// of length `2m`. Neighbour lists are sorted so the layout is unique.
pub fn build_csr(n: usize, edges: &[(usize, usize)]) -> (Vec<i64>, Vec<i64>) {
    let mut deg = vec![0usize; n];
    for &(u, v) in edges {
        deg[u] += 1;
        deg[v] += 1;
    }
    let mut offsets = vec![0i64; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + deg[v] as i64;
    }
    let mut adj = vec![0i64; edges.len() * 2];
    let mut cursor: Vec<usize> = offsets[..n].iter().map(|&o| o as usize).collect();
    for &(u, v) in edges {
        adj[cursor[u]] = v as i64;
        cursor[u] += 1;
        adj[cursor[v]] = u as i64;
        cursor[v] += 1;
    }
    for v in 0..n {
        adj[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
    }
    (offsets, adj)
}

/// Serial reference: BFS distances (level-synchronous ⇒ unique) and the
/// fixed-point PageRank vector (integer adds ⇒ unique).
pub fn reference(opts: &GraphOpts) -> (Vec<i64>, Vec<i64>) {
    let n = opts.nvertices();
    let edges = rmat_edges(opts);
    let (offsets, adj) = build_csr(n, &edges);
    // BFS
    let mut dist = vec![-1i64; n];
    dist[opts.root] = 0;
    let mut frontier = vec![opts.root];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in &adj[offsets[u] as usize..offsets[u + 1] as usize] {
                let v = v as usize;
                if dist[v] < 0 {
                    dist[v] = dist[u] + 1;
                    next.push(v);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    // PageRank, 16.16 fixed point. Per sweep:
    //   next[v] = base + Σ_{u→v} (pr[u]·α_num / α_den) / deg(u)
    // with base = (1−α)/n in fixed point. Integer contributions are
    // summed, so order does not matter.
    let base = (PR_SCALE * (PR_ALPHA_DEN - PR_ALPHA_NUM) / PR_ALPHA_DEN) / n as i64;
    let mut pr = vec![PR_SCALE / n as i64; n];
    for _ in 0..opts.pr_iters {
        let mut next = vec![base; n];
        for u in 0..n {
            let deg = offsets[u + 1] - offsets[u];
            if deg == 0 {
                continue;
            }
            let share = pr[u] * PR_ALPHA_NUM / PR_ALPHA_DEN / deg;
            for &v in &adj[offsets[u] as usize..offsets[u + 1] as usize] {
                next[v as usize] += share;
            }
        }
        pr = next;
    }
    (dist, pr)
}

/// Runs BFS + PageRank on an established runtime. The graph is loaded
/// into GA collectively (each rank writes its own CSR block), then both
/// kernels execute with one-sided traffic only.
pub fn run_graph<A: Armci + ?Sized>(p: &Proc, rt: &A, opts: &GraphOpts) -> GraphResult {
    let n = opts.nvertices();
    let nranks = rt.nprocs();
    let rank = rt.rank();
    let t0 = p.clock().now();
    let mut ops = 0u64;

    let edges = rmat_edges(opts);
    let (offsets, adj) = build_csr(n, &edges);

    // --- distributed graph state -------------------------------------
    let ga_off = GlobalArray::create(rt, "graph-off", GaType::I64, &[n + 1]).unwrap();
    let ga_adj = GlobalArray::create(rt, "graph-adj", GaType::I64, &[adj.len()]).unwrap();
    let ga_dist = GlobalArray::create(rt, "graph-dist", GaType::I64, &[n]).unwrap();
    let ga_parent = GlobalArray::create(rt, "graph-parent", GaType::I64, &[n]).unwrap();
    // claim[v]: first read_inc wins the vertex for the next frontier.
    let ga_claim = GlobalArray::create(rt, "graph-claim", GaType::I64, &[n]).unwrap();
    // Shared next-frontier queue: slot counter at qcnt[0], entries in queue.
    let ga_queue = GlobalArray::create(rt, "graph-queue", GaType::I64, &[n]).unwrap();
    let ga_qcnt = GlobalArray::create(rt, "graph-qcnt", GaType::I64, &[1]).unwrap();

    // Owners write their own blocks of the static CSR and the initial
    // dynamic state; everything is visible after the sync.
    let own = |ga: &GlobalArray<A>, src: &dyn Fn(usize, usize) -> Vec<i64>| {
        let (lo, hi) = ga.my_block();
        if lo[0] < hi[0] {
            ga.put_patch_i64(&lo, &hi, &src(lo[0], hi[0])).unwrap();
        }
    };
    own(&ga_off, &|l, h| offsets[l..h].to_vec());
    own(&ga_adj, &|l, h| adj[l..h].to_vec());
    own(&ga_dist, &|l, h| vec![-1i64; h - l]);
    own(&ga_parent, &|l, h| vec![-1i64; h - l]);
    own(&ga_claim, &|l, h| vec![0i64; h - l]);
    own(&ga_queue, &|l, h| vec![0i64; h - l]);
    own(&ga_qcnt, &|l, h| vec![0i64; h - l]);
    ga_qcnt.sync();

    if rank == 0 {
        ga_dist
            .put_patch_i64(&[opts.root], &[opts.root + 1], &[0])
            .unwrap();
        ga_parent
            .put_patch_i64(&[opts.root], &[opts.root + 1], &[opts.root as i64])
            .unwrap();
        // Claim the root so frontier expansion never re-adds it.
        ga_claim.read_inc(&[opts.root], 1).unwrap();
    }
    ga_qcnt.sync();

    let slow = if nranks > 1 {
        1.0 + opts.skew * rank as f64 / (nranks - 1) as f64
    } else {
        1.0 + opts.skew
    };
    let vertex_compute = opts.vertex_compute_s * slow;

    // --- level-synchronous BFS ---------------------------------------
    let mut frontier: Vec<usize> = vec![opts.root];
    let mut depth = 0i64;
    loop {
        // Round-robin the (globally sorted) frontier over ranks.
        for (i, &u) in frontier.iter().enumerate() {
            if i % nranks != rank {
                continue;
            }
            if vertex_compute > 0.0 {
                p.compute(vertex_compute);
            }
            let off = ga_off.get_patch_i64(&[u], &[u + 2]).unwrap();
            ops += 1;
            let (o0, o1) = (off[0] as usize, off[1] as usize);
            if o1 > o0 {
                let nbrs = ga_adj.get_patch_i64(&[o0], &[o1]).unwrap();
                ops += 1;
                for &v in &nbrs {
                    let v = v as usize;
                    // Hot-spot RMW: first claimant owns the vertex.
                    let prev = ga_claim.read_inc(&[v], 1).unwrap();
                    ops += 1;
                    if prev == 0 {
                        ga_dist.put_patch_i64(&[v], &[v + 1], &[depth + 1]).unwrap();
                        ga_parent
                            .put_patch_i64(&[v], &[v + 1], &[u as i64])
                            .unwrap();
                        let slot = ga_qcnt.read_inc(&[0], 1).unwrap() as usize;
                        ga_queue
                            .put_patch_i64(&[slot], &[slot + 1], &[v as i64])
                            .unwrap();
                        ops += 4;
                    }
                }
            }
        }
        ga_qcnt.sync();
        let qlen = ga_qcnt.get_patch_i64(&[0], &[1]).unwrap()[0] as usize;
        ops += 1;
        if qlen == 0 {
            break;
        }
        let mut next: Vec<usize> = ga_queue
            .get_patch_i64(&[0], &[qlen])
            .unwrap()
            .into_iter()
            .map(|v| v as usize)
            .collect();
        ops += 1;
        // Sort so every rank sees the same frontier order (queue order
        // is timing-dependent; the set is not).
        next.sort_unstable();
        frontier = next;
        depth += 1;
        // Everyone has read the queue and its counter; only now may the
        // owner reset the counter — resetting in the same sync window
        // as the reads would let a rank observe qlen == 0 and leave the
        // level loop early (deadlock at mismatched collectives).
        ga_qcnt.sync();
        if ga_qcnt.my_block().0.first() == Some(&0) && ga_qcnt.my_block().1[0] > 0 {
            ga_qcnt.put_patch_i64(&[0], &[1], &[0]).unwrap();
        }
        ga_qcnt.sync();
    }

    // --- fixed-point PageRank ----------------------------------------
    let ga_pr = GlobalArray::create(rt, "graph-pr", GaType::I64, &[n]).unwrap();
    let ga_nxt = GlobalArray::create(rt, "graph-nxt", GaType::I64, &[n]).unwrap();
    let base = (PR_SCALE * (PR_ALPHA_DEN - PR_ALPHA_NUM) / PR_ALPHA_DEN) / n as i64;
    own(&ga_pr, &|l, h| vec![PR_SCALE / n as i64; h - l]);
    own(&ga_nxt, &|l, h| vec![base; h - l]);
    ga_pr.sync();

    for it in 0..opts.pr_iters {
        let (src, dst) = if it % 2 == 0 {
            (&ga_pr, &ga_nxt)
        } else {
            (&ga_nxt, &ga_pr)
        };
        let (lo, hi) = src.my_block();
        if lo[0] < hi[0] {
            let prs = src.get_patch_i64(&lo, &hi).unwrap();
            let offs = ga_off.get_patch_i64(&[lo[0]], &[hi[0] + 1]).unwrap();
            ops += 2;
            for k in 0..(hi[0] - lo[0]) {
                if vertex_compute > 0.0 {
                    p.compute(vertex_compute);
                }
                let (o0, o1) = (offs[k] as usize, offs[k + 1] as usize);
                let deg = (o1 - o0) as i64;
                if deg == 0 {
                    continue;
                }
                let share = prs[k] * PR_ALPHA_NUM / PR_ALPHA_DEN / deg;
                let nbrs = ga_adj.get_patch_i64(&[o0], &[o1]).unwrap();
                ops += 1;
                for &v in &nbrs {
                    let v = v as usize;
                    // Hot-spot accumulate: hubs absorb most of these.
                    dst.acc_patch_i64(1, &[v], &[v + 1], &[share]).unwrap();
                    ops += 1;
                }
            }
        }
        dst.sync();
        // Owner resets the *source* to base so it can serve as the next
        // sweep's destination.
        let (slo, shi) = src.my_block();
        if slo[0] < shi[0] {
            src.put_patch_i64(&slo, &shi, &vec![base; shi[0] - slo[0]])
                .unwrap();
        }
        src.sync();
    }

    let pr_final = if opts.pr_iters.is_multiple_of(2) {
        &ga_pr
    } else {
        &ga_nxt
    };
    let dist = ga_dist.get_patch_i64(&[0], &[n]).unwrap();
    let parent = ga_parent.get_patch_i64(&[0], &[n]).unwrap();
    let pagerank = pr_final.get_patch_i64(&[0], &[n]).unwrap();
    ops += 3;
    ga_dist.sync();

    for ga in [
        ga_off, ga_adj, ga_dist, ga_parent, ga_claim, ga_queue, ga_qcnt, ga_pr, ga_nxt,
    ] {
        ga.destroy().unwrap();
    }

    GraphResult {
        dist,
        parent,
        pagerank,
        elapsed_s: p.clock().now() - t0,
        ops,
    }
}

/// Spins up a runtime and runs the driver on every rank, returning the
/// per-rank results. `rt_cfg` controls the simulated platform, `cfg`
/// the ARMCI config arm under test.
pub fn execute(
    ranks: usize,
    rt_cfg: RuntimeConfig,
    cfg: Config,
    opts: &GraphOpts,
) -> Vec<GraphResult> {
    let opts = opts.clone();
    Runtime::run_with(ranks, rt_cfg, move |p| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        run_graph(p, &rt, &opts)
    })
}

/// Bit-exact oracle over the per-rank results.
///
/// * all ranks agree on all three vectors;
/// * distances match the serial BFS bit-exact;
/// * the parent tree is valid: `parent[root] == root`, unreached ⇒
///   `parent == -1`, otherwise the parent edge exists in the CSR and
///   `dist[parent] + 1 == dist[v]`;
/// * the PageRank vector matches the serial fixed-point reference
///   bit-exact.
pub fn verify(opts: &GraphOpts, results: &[GraphResult]) -> Result<(), String> {
    let r0 = results.first().ok_or("no results")?;
    for (r, res) in results.iter().enumerate() {
        if res.dist != r0.dist || res.parent != r0.parent || res.pagerank != r0.pagerank {
            return Err(format!("rank {r} disagrees with rank 0"));
        }
    }
    let (dist_ref, pr_ref) = reference(opts);
    if r0.dist != dist_ref {
        return Err("BFS distances diverge from serial reference".into());
    }
    if r0.pagerank != pr_ref {
        return Err("PageRank fixed-point vector diverges from serial reference".into());
    }
    let n = opts.nvertices();
    let edges = rmat_edges(opts);
    let (offsets, adj) = build_csr(n, &edges);
    for v in 0..n {
        let (d, p) = (r0.dist[v], r0.parent[v]);
        if v == opts.root {
            if p != opts.root as i64 {
                return Err(format!("root parent is {p}, want {}", opts.root));
            }
            continue;
        }
        if d < 0 {
            if p != -1 {
                return Err(format!("unreached vertex {v} has parent {p}"));
            }
            continue;
        }
        if p < 0 || p as usize >= n {
            return Err(format!("vertex {v} has out-of-range parent {p}"));
        }
        let pu = p as usize;
        let has_edge = adj[offsets[pu] as usize..offsets[pu + 1] as usize]
            .binary_search(&(v as i64))
            .is_ok();
        if !has_edge {
            return Err(format!("parent edge {pu}→{v} not in graph"));
        }
        if r0.dist[pu] + 1 != d {
            return Err(format!(
                "tree edge {pu}→{v} skips levels: dist {} → {d}",
                r0.dist[pu]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> RuntimeConfig {
        RuntimeConfig {
            charge_time: false,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn csr_is_consistent() {
        let opts = GraphOpts::default();
        let edges = rmat_edges(&opts);
        assert_eq!(edges.len(), opts.nedges());
        let (offsets, adj) = build_csr(opts.nvertices(), &edges);
        assert_eq!(offsets.len(), opts.nvertices() + 1);
        assert_eq!(adj.len(), 2 * edges.len());
        assert_eq!(*offsets.last().unwrap() as usize, adj.len());
    }

    #[test]
    fn rmat_is_hub_skewed() {
        let opts = GraphOpts::default();
        let edges = rmat_edges(&opts);
        let (offsets, _) = build_csr(opts.nvertices(), &edges);
        let n = opts.nvertices();
        let low: i64 = offsets[n / 4] - offsets[0];
        let total: i64 = offsets[n] - offsets[0];
        // The first quarter of the id space should hold well over its
        // proportional share of endpoints.
        assert!(
            low * 2 > total,
            "no hub skew: first quarter holds {low}/{total} endpoints"
        );
    }

    #[test]
    fn driver_matches_reference_small() {
        let opts = GraphOpts {
            scale: 4,
            edge_factor: 4,
            ..GraphOpts::default()
        };
        let results = execute(3, quiet(), Config::default(), &opts);
        verify(&opts, &results).unwrap();
    }

    #[test]
    fn reference_conserves_fixed_point_reasonably() {
        let opts = GraphOpts::default();
        let (_, pr) = reference(&opts);
        let total: i64 = pr.iter().sum();
        // Rounding loses a little mass but the bulk must survive.
        assert!(total > PR_SCALE / 2, "pagerank mass collapsed: {total}");
        assert!(total <= PR_SCALE, "pagerank mass grew: {total}");
    }
}
