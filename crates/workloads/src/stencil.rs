//! Halo-exchange stencil driver: 2D/3D Jacobi iterations with
//! ghost-cell subarray exchange.
//!
//! Each iteration every rank pulls its block plus a `radius`-deep halo
//! with [`GlobalArray::fetch_ghosted`] — a fan of *strided* subarray
//! gets that exercise the derived-datatype LRU cache, the conflict-tree
//! disjointness proofs, and (intra-node) the shm tier — relaxes the
//! interior, writes it back, and folds a global L1 residual through the
//! allreduce.
//!
//! Determinism and the oracle: the per-cell update order is fixed
//! (centre first, then per dimension minus-neighbour before
//! plus-neighbour, dimensions ascending), each cell's inputs come from
//! the previous field only (Jacobi), and the residual allreduce folds
//! per-rank partials in rank order — so a serial reference that
//! replicates the block partition reproduces field *and* residuals
//! bit-exactly.

use crate::SplitMix64;
use armci::Armci;
use armci_mpi::{ArmciMpi, Config};
use ga::{Distribution, GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};

/// Parameters of one stencil run; `Default` is the CI-sized 2D
/// instance. All knobs documented so sweeps are reproducible.
#[derive(Debug, Clone)]
pub struct StencilOpts {
    /// Grid extents (2 or 3 entries → 2D or 3D). Default `[24, 24]`.
    pub dims: Vec<usize>,
    /// Stencil radius = ghost width per dimension. Default 1 (the
    /// classic star stencil); 2 doubles the halo faces.
    pub radius: usize,
    /// Jacobi sweeps. Default 4.
    pub iters: usize,
    /// Periodic boundaries (GA_PERIODIC) instead of zero boundaries.
    pub periodic: bool,
    /// Seed of the deterministic initial field.
    pub seed: u64,
    /// Modelled compute per relaxed cell, seconds. Default 0.
    pub cell_compute_s: f64,
}

impl Default for StencilOpts {
    fn default() -> Self {
        StencilOpts {
            dims: vec![24, 24],
            radius: 1,
            iters: 4,
            periodic: false,
            seed: 0x57E4C11,
            cell_compute_s: 0.0,
        }
    }
}

impl StencilOpts {
    /// Total cell count.
    pub fn ncells(&self) -> usize {
        self.dims.iter().product()
    }
}

/// Per-rank outcome of [`run_stencil`]; every rank fetches the full
/// final field so the oracle can check cross-rank agreement.
#[derive(Debug, Clone)]
pub struct StencilResult {
    /// Final field, row-major over `dims`, after `iters` sweeps.
    pub field: Vec<f64>,
    /// Global L1 residual after each sweep (allreduce result).
    pub residuals: Vec<f64>,
    /// Virtual seconds this rank spent in the run.
    pub elapsed_s: f64,
    /// One-sided operations this rank issued.
    pub ops: u64,
}

/// Deterministic initial field value at flat row-major index `i`.
fn init_cell(seed: u64, i: usize) -> f64 {
    let mut r = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    r.next_f64()
}

/// One Jacobi relaxation of `cell` given its neighbourhood reader.
/// The summation order here is THE contract between driver and oracle:
/// centre, then for each dimension ascending, radius 1..=R, the minus
/// neighbour before the plus neighbour.
fn relax(read: &dyn Fn(&[isize]) -> f64, nd: usize, radius: usize) -> f64 {
    let zero = vec![0isize; nd];
    let mut sum = read(&zero);
    let mut count = 1.0f64;
    for d in 0..nd {
        for r in 1..=radius {
            let mut delta = vec![0isize; nd];
            delta[d] = -(r as isize);
            sum += read(&delta);
            delta[d] = r as isize;
            sum += read(&delta);
            count += 2.0;
        }
    }
    sum / count
}

/// Runs the Jacobi sweeps on an established runtime.
pub fn run_stencil<A: Armci + ?Sized>(p: &Proc, rt: &A, opts: &StencilOpts) -> StencilResult {
    let nd = opts.dims.len();
    let t0 = p.clock().now();
    let mut ops = 0u64;

    let a = GlobalArray::create(rt, "st-a", GaType::F64, &opts.dims).unwrap();
    let b = GlobalArray::create(rt, "st-b", GaType::F64, &opts.dims).unwrap();

    // Owners initialise their own block from the global seed.
    let (mlo, mhi) = a.my_block();
    let my_cells: usize = mlo
        .iter()
        .zip(&mhi)
        .map(|(&l, &h)| h.saturating_sub(l))
        .product();
    if my_cells > 0 {
        let mut init = Vec::with_capacity(my_cells);
        let mut idx = mlo.clone();
        loop {
            let mut flat = 0usize;
            for (&i, &dim) in idx.iter().zip(&opts.dims) {
                flat = flat * dim + i;
            }
            init.push(init_cell(opts.seed, flat));
            let mut d = nd;
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < mhi[d] {
                    break;
                }
                idx[d] = mlo[d];
            }
            if idx == mlo {
                break;
            }
        }
        a.put_patch(&mlo, &mhi, &init).unwrap();
        b.put_patch(&mlo, &mhi, &init).unwrap();
        ops += 2;
    }
    a.sync();

    let width = vec![opts.radius; nd];
    let mut residuals = Vec::with_capacity(opts.iters);
    for it in 0..opts.iters {
        let (src, dst) = if it % 2 == 0 { (&a, &b) } else { (&b, &a) };
        // The halo fetch: a fan of strided subarray gets.
        let gb = src.fetch_ghosted(&width, opts.periodic).unwrap();
        ops += 1;
        let mut partial = 0.0f64;
        if my_cells > 0 {
            let mut new = Vec::with_capacity(my_cells);
            let mut idx = mlo.clone();
            loop {
                if opts.cell_compute_s > 0.0 {
                    p.compute(opts.cell_compute_s);
                }
                let old = gb.at(&idx);
                let val = relax(&|delta| gb.rel(&idx, delta), nd, opts.radius);
                partial += (val - old).abs();
                new.push(val);
                let mut d = nd;
                loop {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < mhi[d] {
                        break;
                    }
                    idx[d] = mlo[d];
                }
                if idx == mlo {
                    break;
                }
            }
            dst.put_patch(&mlo, &mhi, &new).unwrap();
            ops += 1;
        }
        // Global residual: reduce_f64 folds the per-rank contributions
        // in rank order, so the serial oracle can replicate it exactly.
        let mut r = [partial];
        ga::gop::dgop(dst.group(), &mut r, ga::gop::GopOp::Sum);
        residuals.push(r[0]);
        dst.sync();
    }

    let last = if opts.iters.is_multiple_of(2) { &a } else { &b };
    let zero = vec![0usize; nd];
    let field = last.get_patch(&zero, &opts.dims).unwrap();
    ops += 1;
    last.sync();
    a.destroy().unwrap();
    b.destroy().unwrap();

    StencilResult {
        field,
        residuals,
        elapsed_s: p.clock().now() - t0,
        ops,
    }
}

/// Spins up a runtime and runs the driver on every rank.
pub fn execute(
    ranks: usize,
    rt_cfg: RuntimeConfig,
    cfg: Config,
    opts: &StencilOpts,
) -> Vec<StencilResult> {
    let opts = opts.clone();
    Runtime::run_with(ranks, rt_cfg, move |p| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        run_stencil(p, &rt, &opts)
    })
}

/// Serial reference replicating the driver bit-for-bit: same per-cell
/// summation order, same boundary semantics as `fetch_ghosted`
/// (zero-fill or periodic wrap), and residual partials folded over the
/// same `Distribution::regular` block partition in rank order.
pub fn reference(opts: &StencilOpts, ranks: usize) -> (Vec<f64>, Vec<f64>) {
    let nd = opts.dims.len();
    let total = opts.ncells();
    let mut cur: Vec<f64> = (0..total).map(|i| init_cell(opts.seed, i)).collect();
    let dist = Distribution::regular(&opts.dims, ranks);
    let flat_of = |idx: &[usize]| -> usize {
        let mut f = 0usize;
        for (&i, &dim) in idx.iter().zip(&opts.dims) {
            f = f * dim + i;
        }
        f
    };
    let mut residuals = Vec::with_capacity(opts.iters);
    for _ in 0..opts.iters {
        let mut next = vec![0.0f64; total];
        let mut partials = vec![0.0f64; ranks];
        for (cell, partial) in partials.iter_mut().enumerate().take(ranks) {
            let (lo, hi) = dist.cell_block(cell);
            if lo.iter().zip(&hi).any(|(&l, &h)| l >= h) {
                continue;
            }
            let mut idx = lo.clone();
            loop {
                let read = |delta: &[isize]| -> f64 {
                    let mut g = vec![0usize; nd];
                    for d in 0..nd {
                        let x = idx[d] as isize + delta[d];
                        if opts.periodic {
                            g[d] = x.rem_euclid(opts.dims[d] as isize) as usize;
                        } else if x < 0 || x >= opts.dims[d] as isize {
                            return 0.0;
                        } else {
                            g[d] = x as usize;
                        }
                    }
                    cur[flat_of(&g)]
                };
                let old = cur[flat_of(&idx)];
                let val = relax(&read, nd, opts.radius);
                *partial += (val - old).abs();
                next[flat_of(&idx)] = val;
                let mut d = nd;
                loop {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < hi[d] {
                        break;
                    }
                    idx[d] = lo[d];
                }
                if idx == lo {
                    break;
                }
            }
        }
        // reduce_f64's left fold, rank order.
        let mut acc = partials[0];
        for p in &partials[1..] {
            acc += p;
        }
        residuals.push(acc);
        cur = next;
    }
    (cur, residuals)
}

/// Bit-exact oracle: all ranks agree, the final field equals the serial
/// reference to the last bit, and every per-sweep residual matches.
pub fn verify(opts: &StencilOpts, ranks: usize, results: &[StencilResult]) -> Result<(), String> {
    let r0 = results.first().ok_or("no results")?;
    for (r, res) in results.iter().enumerate() {
        if res.field != r0.field || res.residuals != r0.residuals {
            return Err(format!("rank {r} disagrees with rank 0"));
        }
    }
    let (field_ref, res_ref) = reference(opts, ranks);
    for (i, (got, want)) in r0.field.iter().zip(&field_ref).enumerate() {
        if got.to_bits() != want.to_bits() {
            return Err(format!("field[{i}] = {got:e}, reference {want:e}"));
        }
    }
    if r0.residuals.len() != res_ref.len() {
        return Err("residual count mismatch".into());
    }
    for (i, (got, want)) in r0.residuals.iter().zip(&res_ref).enumerate() {
        if got.to_bits() != want.to_bits() {
            return Err(format!("residual[{i}] = {got:e}, reference {want:e}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> RuntimeConfig {
        RuntimeConfig {
            charge_time: false,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn driver_matches_reference_2d() {
        let opts = StencilOpts::default();
        let results = execute(4, quiet(), Config::default(), &opts);
        verify(&opts, 4, &results).unwrap();
    }

    #[test]
    fn driver_matches_reference_3d_periodic() {
        let opts = StencilOpts {
            dims: vec![6, 6, 6],
            periodic: true,
            iters: 2,
            ..StencilOpts::default()
        };
        let results = execute(3, quiet(), Config::default(), &opts);
        verify(&opts, 3, &results).unwrap();
    }

    #[test]
    fn residuals_decay() {
        let (_, res) = reference(&StencilOpts::default(), 4);
        assert!(
            res.windows(2).all(|w| w[1] <= w[0] * 1.5),
            "residuals exploding: {res:?}"
        );
    }
}
