//! Key-value / parameter-server driver: many tiny RMW+get round-trips
//! against a distributed `I64` store.
//!
//! Each rank plays a client issuing a deterministic stream of
//! operations against a GA-resident table: *writes* are
//! `read_inc(key, 1)` (fetch-and-add, the NXTVAL primitive — routed
//! through native MPI atomics or the mutex fallback depending on
//! `Config::atomics`), *reads* are single-element gets. A configurable
//! fraction of traffic hammers a small "hot" key range, recreating the
//! parameter-server pattern where a handful of popular parameters
//! absorb most of the update traffic.
//!
//! The oracle is a **linearizable-counter check**: fetch-and-add on a
//! counter is linearizable, so across all ranks the observed
//! pre-increment values of key `k` must be exactly `{0, 1, …, w_k−1}`
//! (each seen once), the final table value must equal `w_k`, and every
//! read of `k` must land in `[0, w_k]`. Any lost update, duplicated
//! ticket, or torn read fails the oracle on all transports.

use crate::{rank_seed, SplitMix64};
use armci::Armci;
use armci_mpi::{ArmciMpi, Config};
use ga::{GaType, GlobalArray};
use mpisim::{Proc, Runtime, RuntimeConfig};

/// Parameters of one KV run; `Default` is the CI-sized instance.
#[derive(Debug, Clone)]
pub struct KvOpts {
    /// Table size (number of keys). Default 64.
    pub keys: usize,
    /// Operations issued per rank. Default 128.
    pub ops_per_rank: usize,
    /// Percent of operations that are reads (gets); the rest are
    /// fetch-and-add writes. Default 50.
    pub read_pct: usize,
    /// Percent of operations aimed at the hot key range. Default 60.
    pub hot_pct: usize,
    /// Size of the hot key range (keys `0..hot_keys`). Default 4.
    pub hot_keys: usize,
    /// Instance seed; per-rank streams derive from it.
    pub seed: u64,
    /// Modelled client think time per operation, seconds. Default 0.
    pub think_s: f64,
}

impl Default for KvOpts {
    fn default() -> Self {
        KvOpts {
            keys: 64,
            ops_per_rank: 128,
            read_pct: 50,
            hot_pct: 60,
            hot_keys: 4,
            seed: 0xCAFE,
            think_s: 0.0,
        }
    }
}

/// Per-rank outcome of [`run_kv`].
#[derive(Debug, Clone)]
pub struct KvResult {
    /// `(key, observed pre-increment value)` per write, in issue order.
    pub writes: Vec<(usize, i64)>,
    /// `(key, observed value)` per read, in issue order.
    pub reads: Vec<(usize, i64)>,
    /// Final table contents (fetched after the closing barrier).
    pub finals: Vec<i64>,
    /// Virtual seconds this rank spent in the run.
    pub elapsed_s: f64,
    /// One-sided operations this rank issued.
    pub ops: u64,
}

/// Runs the client loop on an established runtime.
pub fn run_kv<A: Armci + ?Sized>(p: &Proc, rt: &A, opts: &KvOpts) -> KvResult {
    let t0 = p.clock().now();
    let mut ops = 0u64;
    let store = GlobalArray::create(rt, "kv-store", GaType::I64, &[opts.keys]).unwrap();
    let (lo, hi) = store.my_block();
    if lo[0] < hi[0] {
        store
            .put_patch_i64(&lo, &hi, &vec![0i64; hi[0] - lo[0]])
            .unwrap();
    }
    store.sync();

    let mut rng = SplitMix64::new(rank_seed(opts.seed, rt.rank()));
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    for _ in 0..opts.ops_per_rank {
        if opts.think_s > 0.0 {
            p.compute(opts.think_s);
        }
        let key = if rng.below(100) < opts.hot_pct {
            rng.below(opts.hot_keys.min(opts.keys))
        } else {
            rng.below(opts.keys)
        };
        if rng.below(100) < opts.read_pct {
            let v = store.get_patch_i64(&[key], &[key + 1]).unwrap()[0];
            reads.push((key, v));
        } else {
            let prev = store.read_inc(&[key], 1).unwrap();
            writes.push((key, prev));
        }
        ops += 1;
    }
    store.sync();
    let finals = store.get_patch_i64(&[0], &[opts.keys]).unwrap();
    ops += 1;
    store.sync();
    store.destroy().unwrap();

    KvResult {
        writes,
        reads,
        finals,
        elapsed_s: p.clock().now() - t0,
        ops,
    }
}

/// Spins up a runtime and runs the client loop on every rank.
pub fn execute(ranks: usize, rt_cfg: RuntimeConfig, cfg: Config, opts: &KvOpts) -> Vec<KvResult> {
    let opts = opts.clone();
    Runtime::run_with(ranks, rt_cfg, move |p| {
        let rt = ArmciMpi::with_config(p, cfg.clone());
        run_kv(p, &rt, &opts)
    })
}

/// Linearizable-counter oracle over the per-rank results:
///
/// * per key, the multiset of observed pre-increment values across all
///   ranks is exactly `{0 … w_k−1}` — no lost updates, no duplicate
///   tickets;
/// * the final value of key `k` equals `w_k` on every rank;
/// * every read of `k` observed a value in `[0, w_k]`.
pub fn verify(opts: &KvOpts, results: &[KvResult]) -> Result<(), String> {
    let r0 = results.first().ok_or("no results")?;
    for (r, res) in results.iter().enumerate() {
        if res.finals != r0.finals {
            return Err(format!("rank {r} read different finals than rank 0"));
        }
    }
    let mut tickets: Vec<Vec<i64>> = vec![Vec::new(); opts.keys];
    for res in results {
        for &(k, prev) in &res.writes {
            tickets[k].push(prev);
        }
    }
    for (k, t) in tickets.iter_mut().enumerate() {
        t.sort_unstable();
        let w = t.len() as i64;
        let want: Vec<i64> = (0..w).collect();
        if *t != want {
            return Err(format!(
                "key {k}: tickets {t:?} are not 0..{w} — lost/duplicated RMW"
            ));
        }
        if r0.finals[k] != w {
            return Err(format!(
                "key {k}: final {} but {w} writes landed",
                r0.finals[k]
            ));
        }
    }
    for res in results {
        for &(k, v) in &res.reads {
            let w = tickets[k].len() as i64;
            if v < 0 || v > w {
                return Err(format!("key {k}: read {v} outside [0, {w}]"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> RuntimeConfig {
        RuntimeConfig {
            charge_time: false,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn counters_linearize() {
        let opts = KvOpts::default();
        let results = execute(4, quiet(), Config::default(), &opts);
        verify(&opts, &results).unwrap();
        // The hot mix must actually concentrate writes.
        let mut hot = 0usize;
        let mut total = 0usize;
        for r in &results {
            for &(k, _) in &r.writes {
                total += 1;
                if k < opts.hot_keys {
                    hot += 1;
                }
            }
        }
        assert!(hot * 2 > total, "hot keys got {hot}/{total} writes");
    }

    #[test]
    fn read_heavy_mix_still_verifies() {
        let opts = KvOpts {
            read_pct: 90,
            ops_per_rank: 64,
            ..KvOpts::default()
        };
        let results = execute(3, quiet(), Config::default(), &opts);
        verify(&opts, &results).unwrap();
    }
}
