//! Multi-scenario workload drivers over the GA/ARMCI stack.
//!
//! The paper's evaluation (and every optimisation layered on since —
//! coalescing, shm tier, native atomics, progress agents) is shaped by
//! dense-linear-algebra traffic: strided patches, NXTVAL, CCSD. Real
//! RMA applications also do fine-grained irregular access, neighborhood
//! exchange, and server-style RPC. This crate holds three end-to-end
//! drivers that exercise exactly those shapes:
//!
//! * [`graph`] — BFS plus a fixed-point PageRank sweep over a
//!   deterministic R-MAT-style edge list stored in GA. Fine-grained
//!   random gets, hot-spot `read_inc`/accumulate traffic into
//!   high-degree vertices, irregular per-rank skew.
//! * [`stencil`] — 2D/3D Jacobi with ghost-cell halo exchange
//!   (strided subarray gets through the dtype cache and ctree).
//! * [`kv`] — a key-value/parameter-server loop: many tiny RMW+get
//!   round-trips against a distributed store with a configurable
//!   reader/writer mix.
//!
//! Each driver is deterministic in the virtual-time simulator: the
//! payloads and final state are bit-identical across `Config` arms
//! (transport, atomics, progress, coalesce) — only the clock moves.
//! That is what lets every driver carry a *bit-exact* verification
//! oracle (serial reference for BFS distances, PageRank fixed-point
//! vectors, stencil fields and residual folds; a linearizable-counter
//! check for KV) which the bench sweep and the proptests both run.
//!
//! [`scale`] prices each driver's contended resource through scalesim's
//! discrete-event models, extending the measured 4-rank runs to
//! 10⁵–10⁶ simulated clients.

pub mod graph;
pub mod kv;
pub mod scale;
pub mod stencil;

pub use graph::{GraphOpts, GraphResult};
pub use kv::{KvOpts, KvResult};
pub use scale::ScaleRow;
pub use stencil::{StencilOpts, StencilResult};

/// SplitMix64: the deterministic, seedable stream every driver draws
/// from. Chosen over `rand` so the generated instances (edge lists, key
/// streams) are reproducible from a single `u64` written in the docs,
/// independent of any crate version.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Per-rank derived seed: decorrelates rank streams without losing
/// reproducibility from the instance seed.
pub fn rank_seed(seed: u64, rank: usize) -> u64 {
    seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(1);
        assert!(r.next_f64() < 1.0);
        assert!(r.below(7) < 7);
    }

    #[test]
    fn rank_seeds_differ() {
        assert_ne!(rank_seed(9, 0), rank_seed(9, 1));
        assert_eq!(rank_seed(9, 3), rank_seed(9, 3));
    }
}
