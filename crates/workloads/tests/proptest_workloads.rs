//! Property tests: every workload driver's bit-exact oracle holds over
//! random small instances on all three transport paths — MPI RMA over
//! the wire, RAMC-style channels over the wire, and MPI RMA through the
//! intra-node shared-memory tier.

use armci_mpi::{Config, TransportKind};
use mpisim::RuntimeConfig;
use proptest::prelude::*;
use simnet::{Platform, PlatformId};
use workloads::{graph, kv, stencil, GraphOpts, KvOpts, StencilOpts};

/// The three transport paths of the acceptance criterion. Each entry is
/// (label, runtime config builder, armci config).
fn transports() -> Vec<(&'static str, RuntimeConfig, Config)> {
    // One rank per node: traffic crosses the wire.
    let mut internode = Platform::get(PlatformId::InfiniBandCluster).customized("wl-proptest");
    internode.sockets_per_node = 1;
    internode.cores_per_socket = 1;
    let wire = RuntimeConfig {
        platform: internode,
        charge_time: false,
        ..Default::default()
    };
    // Default topology keeps several ranks per node: the shm tier
    // routes neighbour traffic through shared memory.
    let intranode = RuntimeConfig {
        charge_time: false,
        ..Default::default()
    };
    vec![
        (
            "mpi-rma",
            wire.clone(),
            Config {
                transport: TransportKind::MpiRma,
                ..Default::default()
            },
        ),
        (
            "channel",
            wire,
            Config {
                transport: TransportKind::Channel,
                ..Default::default()
            },
        ),
        (
            "shm",
            intranode,
            Config {
                transport: TransportKind::MpiRma,
                shm: true,
                ..Default::default()
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// BFS distances, parent-tree validity and fixed-point PageRank
    /// match the serial reference on every transport.
    #[test]
    fn graph_oracle_all_transports(
        scale in 3u32..6,
        edge_factor in 2usize..6,
        seed in 0u64..1000,
        ranks in 2usize..5,
    ) {
        let opts = GraphOpts {
            scale,
            edge_factor,
            seed,
            pr_iters: 2,
            ..GraphOpts::default()
        };
        for (label, rt_cfg, cfg) in transports() {
            let results = graph::execute(ranks, rt_cfg, cfg, &opts);
            prop_assert!(
                graph::verify(&opts, &results).is_ok(),
                "graph oracle failed on {} ({:?}): {:?}",
                label, &opts, graph::verify(&opts, &results)
            );
        }
    }

    /// Final stencil field and every per-sweep residual are bit-exact
    /// against the serial Jacobi on every transport.
    #[test]
    fn stencil_oracle_all_transports(
        edge in 6usize..14,
        flags in 0usize..4,
        radius in 1usize..3,
        seed in 0u64..1000,
        ranks in 2usize..5,
    ) {
        let (threed, periodic) = (flags & 1 != 0, flags & 2 != 0);
        let dims = if threed { vec![edge, edge, 4] } else { vec![edge, edge] };
        let opts = StencilOpts {
            dims,
            radius,
            periodic,
            iters: 3,
            seed,
            ..StencilOpts::default()
        };
        for (label, rt_cfg, cfg) in transports() {
            let results = stencil::execute(ranks, rt_cfg, cfg, &opts);
            prop_assert!(
                stencil::verify(&opts, ranks, &results).is_ok(),
                "stencil oracle failed on {} ({:?}): {:?}",
                label, &opts, stencil::verify(&opts, ranks, &results)
            );
        }
    }

    /// Fetch-and-add tickets linearize — no lost or duplicated updates
    /// — under random mixes on every transport.
    #[test]
    fn kv_oracle_all_transports(
        keys in 4usize..40,
        read_pct in 0usize..100,
        hot_pct in 0usize..100,
        ops in 16usize..80,
        seed in 0u64..1000,
        ranks in 2usize..5,
    ) {
        let opts = KvOpts {
            keys,
            read_pct,
            hot_pct,
            hot_keys: 2,
            ops_per_rank: ops,
            seed,
            ..KvOpts::default()
        };
        for (label, rt_cfg, cfg) in transports() {
            let results = kv::execute(ranks, rt_cfg, cfg, &opts);
            prop_assert!(
                kv::verify(&opts, &results).is_ok(),
                "kv oracle failed on {} ({:?}): {:?}",
                label, &opts, kv::verify(&opts, &results)
            );
        }
    }
}
