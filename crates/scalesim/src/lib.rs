//! Discrete-event simulator for large-scale NWChem proxy runs (Figure 6).
//!
//! The thread-per-rank runtime cannot reach the paper's 744–12,288 cores,
//! so the scaling study replays the proxy's task stream in an event-driven
//! model: `P` logical processes repeatedly claim tickets from the shared
//! **NXTVAL counter** (a serial server at the hosting process — the
//! classic GA bottleneck) and execute one task (`compute + comm`) per
//! ticket. Per-task costs come from [`nwchem_proxy::profile`], which uses
//! the same [`simnet`] cost models as the executable runtimes, so the DES
//! and the thread-level simulation agree by construction.
//!
//! Two effects beyond the per-task model matter at scale and are
//! represented explicitly:
//!
//! * **counter contention** — the NXTVAL server grants tickets FIFO; when
//!   `P · service_time` approaches the task duration the counter
//!   serialises the run (visible as flattening at high core counts);
//! * **interconnect congestion** — the Cray XE6's development-release
//!   native port degraded under load (the paper's native XE curves flatten
//!   for (T) and *worsen* for CCSD); modelled as a per-backend comm-time
//!   multiplier `1 + P / congestion_scale`.

pub mod fig6;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation input.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Logical processes.
    pub nprocs: usize,
    /// Tasks to execute (per iteration).
    pub ntasks: usize,
    /// Compute seconds per task.
    pub task_compute: f64,
    /// Communication seconds per task (before congestion scaling).
    pub task_comm: f64,
    /// NXTVAL service seconds per request at the counter host.
    pub nxtval_service: f64,
    /// Origin-observed NXTVAL round-trip latency (excluding queueing).
    pub nxtval_latency: f64,
    /// Optional congestion model (the XE6 development-release native
    /// port): effective comm = comm · (1 + (P/scale)²). Supra-linear so
    /// that scaling first flattens, then reverses — the paper's native
    /// XE CCSD curve.
    pub congestion_scale: Option<f64>,
    /// Fixed startup/synchronisation cost per iteration.
    pub startup: f64,
    /// Iterations (the makespan of one iteration is multiplied).
    pub iterations: usize,
}

/// Simulation output.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Wall-clock (virtual) seconds for the whole run.
    pub makespan: f64,
    /// Fraction of the makespan the counter server was busy.
    pub counter_utilisation: f64,
    /// Mean queueing wait per NXTVAL request.
    pub mean_nxtval_wait: f64,
}

/// Per-node sharded refinement of the NXTVAL counter (the
/// `armci_mpi::NxtvalCounter` discipline): each node's leader holds a
/// shard of `block` tickets claimed by node peers at intra-node atomic
/// cost, and the home counter — the serial server of the flat model —
/// is only visited once per `block` tickets for a refill. The home
/// service/latency still come from [`SimConfig`]; this struct adds the
/// shard tier.
#[derive(Debug, Clone, Copy)]
pub struct ShardedCounter {
    /// Ranks sharing one shard (the node size).
    pub ranks_per_node: usize,
    /// Tickets fetched from home per refill.
    pub block: usize,
    /// Shard-server service time per local claim (a slab CAS).
    pub shard_service: f64,
    /// Origin-observed shard round-trip latency (excluding queueing).
    pub shard_latency: f64,
}

/// Time-ordered event key (min-heap via reversed compare).
#[derive(Debug, PartialEq)]
struct Ev {
    t: f64,
    proc: usize,
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties broken by proc id for determinism
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.proc.cmp(&self.proc))
    }
}

/// Simulates one iteration; returns (makespan, busy, total_wait, requests).
fn simulate_iteration(cfg: &SimConfig) -> (f64, f64, f64, usize) {
    let comm = match cfg.congestion_scale {
        Some(scale) => {
            let x = cfg.nprocs as f64 / scale;
            cfg.task_comm * (1.0 + x * x)
        }
        None => cfg.task_comm,
    };
    let task_time = cfg.task_compute + comm;

    // All processes request their first ticket at t = startup.
    let mut heap: BinaryHeap<Ev> = (0..cfg.nprocs)
        .map(|p| Ev {
            t: cfg.startup,
            proc: p,
        })
        .collect();
    let mut server_free = 0.0f64;
    let mut next_ticket = 0usize;
    let mut busy = 0.0f64;
    let mut total_wait = 0.0f64;
    let mut requests = 0usize;
    let mut makespan = cfg.startup;

    while let Some(Ev { t, proc }) = heap.pop() {
        // Request arrives at the counter host after half a round trip.
        let arrive = t + 0.5 * cfg.nxtval_latency;
        let start = server_free.max(arrive);
        let done = start + cfg.nxtval_service;
        busy += cfg.nxtval_service;
        total_wait += start - arrive;
        requests += 1;
        server_free = done;
        // Ticket travels back.
        let got = done + 0.5 * cfg.nxtval_latency;
        let ticket = next_ticket;
        next_ticket += 1;
        if ticket < cfg.ntasks {
            heap.push(Ev {
                t: got + task_time,
                proc,
            });
        } else {
            makespan = makespan.max(got);
        }
    }
    (makespan, busy, total_wait, requests)
}

/// Simulates one iteration under the sharded counter; returns
/// (makespan, home busy, total wait, requests). Requests queue at their
/// node's shard server; an empty shard makes the grant additionally wait
/// for a home-counter round trip (the refill), serialised at the home
/// server like every flat-model request.
fn simulate_sharded_iteration(cfg: &SimConfig, sh: &ShardedCounter) -> (f64, f64, f64, usize) {
    let comm = match cfg.congestion_scale {
        Some(scale) => {
            let x = cfg.nprocs as f64 / scale;
            cfg.task_comm * (1.0 + x * x)
        }
        None => cfg.task_comm,
    };
    let task_time = cfg.task_compute + comm;
    let rpn = sh.ranks_per_node.max(1);
    let nnodes = cfg.nprocs.div_ceil(rpn);

    let mut heap: BinaryHeap<Ev> = (0..cfg.nprocs)
        .map(|p| Ev {
            t: cfg.startup,
            proc: p,
        })
        .collect();
    let mut shard_free = vec![0.0f64; nnodes];
    let mut stock = vec![0usize; nnodes];
    let mut home_free = 0.0f64;
    let mut home_busy = 0.0f64;
    let mut total_wait = 0.0f64;
    let mut requests = 0usize;
    let mut next_ticket = 0usize;
    let mut makespan = cfg.startup;

    while let Some(Ev { t, proc }) = heap.pop() {
        let node = proc / rpn;
        let arrive = t + 0.5 * sh.shard_latency;
        let mut start = shard_free[node].max(arrive);
        if stock[node] == 0 {
            // Refill: the shard does a home round trip before granting.
            let harrive = start + 0.5 * cfg.nxtval_latency;
            let hstart = home_free.max(harrive);
            let hdone = hstart + cfg.nxtval_service;
            home_busy += cfg.nxtval_service;
            home_free = hdone;
            start = hdone + 0.5 * cfg.nxtval_latency;
            stock[node] = sh.block.max(1);
        }
        stock[node] -= 1;
        let done = start + sh.shard_service;
        shard_free[node] = done;
        total_wait += start - arrive;
        requests += 1;
        let got = done + 0.5 * sh.shard_latency;
        let ticket = next_ticket;
        next_ticket += 1;
        if ticket < cfg.ntasks {
            heap.push(Ev {
                t: got + task_time,
                proc,
            });
        } else {
            makespan = makespan.max(got);
        }
    }
    (makespan, home_busy, total_wait, requests)
}

/// Runs the simulation with the sharded NXTVAL counter.
/// `counter_utilisation` reports the *home* server — the shared resource
/// whose saturation is the flat model's plateau.
pub fn simulate_sharded(cfg: &SimConfig, shard: &ShardedCounter) -> SimResult {
    assert!(cfg.nprocs > 0 && cfg.iterations > 0);
    let (mk, busy, wait, reqs) = simulate_sharded_iteration(cfg, shard);
    SimResult {
        makespan: mk * cfg.iterations as f64,
        counter_utilisation: (busy / mk).min(1.0),
        mean_nxtval_wait: wait / reqs as f64,
    }
}

/// Runs the simulation.
///
/// ```
/// use scalesim::{simulate, SimConfig};
///
/// let base = SimConfig {
///     nprocs: 64,
///     ntasks: 10_000,
///     task_compute: 1e-3,
///     task_comm: 0.5e-3,
///     nxtval_service: 2e-6,
///     nxtval_latency: 4e-6,
///     congestion_scale: None,
///     startup: 0.0,
///     iterations: 1,
/// };
/// let r64 = simulate(&base);
/// let r128 = simulate(&SimConfig { nprocs: 128, ..base });
/// assert!(r128.makespan < r64.makespan); // more cores, faster
/// ```
pub fn simulate(cfg: &SimConfig) -> SimResult {
    assert!(cfg.nprocs > 0 && cfg.iterations > 0);
    let (mk, busy, wait, reqs) = simulate_iteration(cfg);
    SimResult {
        makespan: mk * cfg.iterations as f64,
        counter_utilisation: (busy / mk).min(1.0),
        mean_nxtval_wait: wait / reqs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            nprocs: 4,
            ntasks: 100,
            task_compute: 1.0e-3,
            task_comm: 0.5e-3,
            nxtval_service: 2.0e-6,
            nxtval_latency: 4.0e-6,
            congestion_scale: None,
            startup: 0.0,
            iterations: 1,
        }
    }

    #[test]
    fn single_proc_executes_serially() {
        let cfg = SimConfig {
            nprocs: 1,
            ..base()
        };
        let r = simulate(&cfg);
        let per_task = cfg.task_compute + cfg.task_comm + cfg.nxtval_service + cfg.nxtval_latency;
        // 100 tasks + the final empty-ticket probe
        let expect = 100.0 * per_task + cfg.nxtval_service + cfg.nxtval_latency;
        assert!(
            (r.makespan - expect).abs() < 1e-9,
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn speedup_is_near_linear_when_uncontended() {
        let t1 = simulate(&SimConfig {
            nprocs: 1,
            ..base()
        })
        .makespan;
        let t4 = simulate(&SimConfig {
            nprocs: 4,
            ..base()
        })
        .makespan;
        let speedup = t1 / t4;
        assert!(speedup > 3.5 && speedup <= 4.2, "speedup {speedup}");
    }

    #[test]
    fn counter_saturates_at_extreme_scale() {
        // With enough processes the makespan is bounded below by
        // ntasks · service.
        let cfg = SimConfig {
            nprocs: 10_000,
            ntasks: 20_000,
            ..base()
        };
        let r = simulate(&cfg);
        assert!(r.makespan >= 20_000.0 * cfg.nxtval_service);
        assert!(r.counter_utilisation > 0.5);
        let uncontended = simulate(&SimConfig { nprocs: 64, ..cfg });
        assert!(uncontended.mean_nxtval_wait < r.mean_nxtval_wait);
    }

    #[test]
    fn makespan_monotone_nonincreasing_in_procs() {
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 8, 16, 32, 64] {
            let r = simulate(&SimConfig {
                nprocs: p,
                ..base()
            });
            assert!(
                r.makespan <= prev * 1.0001,
                "p={p}: {} vs prev {prev}",
                r.makespan
            );
            prev = r.makespan;
        }
    }

    #[test]
    fn congestion_makes_scaling_flatten_or_worsen() {
        let cfg = SimConfig {
            ntasks: 10_000,
            congestion_scale: Some(200.0),
            ..base()
        };
        let t256 = simulate(&SimConfig { nprocs: 256, ..cfg }).makespan;
        let t4096 = simulate(&SimConfig {
            nprocs: 4096,
            ..cfg
        })
        .makespan;
        // 16× more processes buys little or negative improvement
        assert!(t4096 > 0.5 * t256, "t256 {t256} t4096 {t4096}");
    }

    #[test]
    fn iterations_multiply_makespan() {
        let one = simulate(&base()).makespan;
        let ten = simulate(&SimConfig {
            iterations: 10,
            ..base()
        })
        .makespan;
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn all_tasks_are_executed_exactly_once() {
        // Indirect check: makespan with P≥ntasks+1 equals roughly one
        // task (everyone grabs at most one ticket).
        let cfg = SimConfig {
            nprocs: 200,
            ntasks: 100,
            ..base()
        };
        let r = simulate(&cfg);
        let per_task = cfg.task_compute + cfg.task_comm;
        assert!(r.makespan < per_task + 400.0 * cfg.nxtval_service + 1e-3);
    }

    #[test]
    fn sharded_counter_scales_past_the_flat_plateau() {
        // Weak scaling: tickets per process fixed, so the flat counter's
        // home server saturates (P · service > task time) while the
        // sharded counter amortises home traffic 1/block.
        let shard = ShardedCounter {
            ranks_per_node: 32,
            block: 64,
            shard_service: 5.0e-8,
            shard_latency: 1.0e-7,
        };
        let mk = |p: usize, sharded: bool| {
            let cfg = SimConfig {
                nprocs: p,
                ntasks: 8 * p,
                ..base()
            };
            if sharded {
                simulate_sharded(&cfg, &shard).makespan
            } else {
                simulate(&cfg).makespan
            }
        };
        // Throughput (tickets/s) of the flat counter flattens at the
        // home server's rate; the sharded counter keeps scaling.
        let flat_tp = |p: usize| 8.0 * p as f64 / mk(p, false);
        let shard_tp = |p: usize| 8.0 * p as f64 / mk(p, true);
        assert!(
            flat_tp(4096) < 1.05 * flat_tp(1024),
            "flat should plateau: {} vs {}",
            flat_tp(4096),
            flat_tp(1024)
        );
        assert!(
            shard_tp(4096) > 2.0 * flat_tp(4096),
            "sharded {} should beat flat {} at 4096",
            shard_tp(4096),
            flat_tp(4096)
        );
        assert!(
            shard_tp(4096) > 1.5 * shard_tp(256),
            "sharded keeps scaling: {} vs {}",
            shard_tp(4096),
            shard_tp(256)
        );
    }

    #[test]
    fn sharded_home_utilisation_is_a_block_fraction_of_flat() {
        let shard = ShardedCounter {
            ranks_per_node: 32,
            block: 64,
            shard_service: 5.0e-8,
            shard_latency: 1.0e-7,
        };
        let cfg = SimConfig {
            nprocs: 2048,
            ntasks: 8 * 2048,
            ..base()
        };
        let flat = simulate(&cfg);
        let sh = simulate_sharded(&cfg, &shard);
        assert!(
            flat.counter_utilisation > 0.9,
            "{}",
            flat.counter_utilisation
        );
        assert!(
            sh.counter_utilisation < 0.5 * flat.counter_utilisation,
            "home load must drop ~1/block: {} vs {}",
            sh.counter_utilisation,
            flat.counter_utilisation
        );
    }

    #[test]
    fn startup_shifts_makespan() {
        let a = simulate(&base()).makespan;
        let b = simulate(&SimConfig {
            startup: 1.0,
            ..base()
        })
        .makespan;
        assert!((b - a - 1.0).abs() < 1e-9);
    }
}
