//! Figure 6 series generation: NWChem CCSD and (T) execution time versus
//! core count, for ARMCI-MPI and ARMCI-Native on all four platforms.
//!
//! Beyond the per-task profile two scale effects are modelled here:
//!
//! * **Target serialisation under exclusive epochs.** ARMCI-MPI (without
//!   the §VIII-A access-mode hints) must lock every target exclusively, so
//!   concurrent gets of the same hot integral blocks queue behind one
//!   another, while native RDMA reads proceed concurrently. With uniform
//!   traffic each target's utilisation equals the communication fraction
//!   ρ = comm/(comm+compute); M/M/1-style waiting inflates effective
//!   communication time by `1/(1 - 0.7·ρ)`. This term is what produces
//!   the ~2× application-level gap on InfiniBand (paper §VII-D) although
//!   the raw bandwidth gap is smaller, and it shrinks where compute
//!   dominates — exactly the (T) behaviour.
//! * **Dev-release congestion on the Cray XE6 native port** — the
//!   quadratic comm degradation of [`crate::SimConfig::congestion_scale`],
//!   reproducing the native XE curves that flatten for (T) and worsen for
//!   CCSD at high core counts while ARMCI-MPI keeps improving.

use crate::{simulate, simulate_sharded, SimConfig};
use nwchem_proxy::{task_profile, Backend, CcsdConfig, ProxyPhase};
use simnet::{Platform, PlatformId};

/// One point of a Figure 6 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    pub cores: usize,
    pub minutes: f64,
}

/// The proxy configuration used for Figure 6 (w5 at production tiling).
pub fn fig6_config() -> CcsdConfig {
    CcsdConfig {
        no: 20,
        nv: 435,
        tile_o: 5,
        tile_v: 15,
        iterations: 10,
    }
}

/// Core counts plotted per platform (from the paper's x-axes; Blue Gene/P
/// is plotted in nodes × 4 cores).
pub fn core_counts(id: PlatformId) -> Vec<usize> {
    match id {
        PlatformId::BlueGeneP => vec![256 * 4, 512 * 4, 768 * 4, 1024 * 4],
        PlatformId::InfiniBandCluster => vec![192, 224, 256, 288, 320, 352, 384],
        PlatformId::CrayXT5 => vec![1536, 3072, 6144, 9216, 12288],
        PlatformId::CrayXE6 => vec![744, 1488, 2232, 2976, 3720, 4464, 5208, 5952],
    }
}

/// Which phases the paper plots per platform.
pub fn phases(id: PlatformId) -> Vec<ProxyPhase> {
    match id {
        PlatformId::InfiniBandCluster | PlatformId::CrayXE6 => {
            vec![ProxyPhase::Ccsd, ProxyPhase::Triples]
        }
        _ => vec![ProxyPhase::Ccsd],
    }
}

/// Exclusive-epoch target-serialisation multiplier for ARMCI-MPI.
/// `coeff` is the fraction of a target's utilisation that actually
/// blocks remote service: 0.7 when the host CPU must enter the MPI
/// library, collapsing to the agent's residual contention share when a
/// per-node progress agent drains passive-target traffic instead.
fn target_serialisation(comm: f64, compute: f64, coeff: f64) -> f64 {
    let rho = comm / (comm + compute);
    1.0 / (1.0 - coeff * rho)
}

/// Host-side utilisation coefficient without asynchronous progress.
const HOST_SERIAL_COEFF: f64 = 0.7;

/// The XE6 native port's congestion scale (cores); other combinations are
/// congestion-free.
fn congestion(id: PlatformId, backend: Backend) -> Option<f64> {
    match (id, backend) {
        (PlatformId::CrayXE6, Backend::Native) => Some(2000.0),
        _ => None,
    }
}

/// Ablation switches for ARMCI-MPI (paper §VIII).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig6Opts {
    /// §VIII-A access-mode hints: integral/amplitude arrays marked
    /// read-only / accumulate-only, so shared locks replace exclusive
    /// epochs and the target-serialisation penalty disappears.
    pub access_modes: bool,
    /// §VIII-B MPI-3 atomics: NXTVAL served by `fetch_and_op` instead of
    /// the mutex protocol.
    pub mpi3_rmw: bool,
    /// Sharded NXTVAL (`armci_mpi::NxtvalCounter`) with this refill
    /// block: node peers claim tickets from a per-node shard at slab
    /// atomic cost and the home counter serves one refill per block.
    /// Implies native home atomics (the shard protocol is CAS-based).
    pub nxtval_shard: Option<usize>,
    /// Per-node asynchronous progress agent (`ProgressMode::Agent`,
    /// Casper / Zhou & Gracia style): passive-target service no longer
    /// waits on the target host entering MPI, so the serialisation
    /// coefficient collapses to the agent's residual contention share —
    /// but every op pays the node's agent round (forward + service,
    /// inflated by host fan-in) and each node gives up one core to the
    /// agent. Helps where serialisation dominates (CCSD), taxes where
    /// compute does ((T)).
    pub progress_agent: bool,
}

/// Computes one Figure 6 point with explicit ablation options.
pub fn point_with(
    platform: &Platform,
    backend: Backend,
    phase: ProxyPhase,
    cores: usize,
    opts: Fig6Opts,
) -> Fig6Point {
    let cfg = fig6_config();
    let prof = task_profile(&cfg, platform, backend, phase);
    let agent = opts.progress_agent && backend == Backend::ArmciMpi && platform.progress.available;
    let cpn = platform.cores_per_node() as usize;
    let comm = match backend {
        Backend::ArmciMpi if !opts.access_modes => {
            let coeff = if agent {
                HOST_SERIAL_COEFF * platform.progress.host_contention
            } else {
                HOST_SERIAL_COEFF
            };
            prof.comm_time * target_serialisation(prof.comm_time, prof.compute_time, coeff)
        }
        _ => prof.comm_time,
    };
    // The agent's price: one service round per task's communication plus
    // one core per node handed to the agent.
    let comm = if agent {
        comm + platform.progress.round_cost(cpn)
    } else {
        comm
    };
    let workers = if agent {
        (cores - cores.div_ceil(cpn)).max(1)
    } else {
        cores
    };
    let sharded = opts.nxtval_shard.filter(|_| backend == Backend::ArmciMpi);
    let nxtval = if (opts.mpi3_rmw || sharded.is_some()) && backend == Backend::ArmciMpi {
        platform.mpi.rmw_latency
    } else {
        prof.nxtval_service
    };
    let iterations = match phase {
        ProxyPhase::Ccsd => cfg.iterations,
        ProxyPhase::Triples => 1,
    };
    let sim = SimConfig {
        nprocs: workers,
        ntasks: prof.ntasks,
        task_compute: prof.compute_time,
        task_comm: comm,
        nxtval_service: nxtval,
        nxtval_latency: 2.0 * nxtval,
        congestion_scale: congestion(platform.id, backend),
        startup: 0.05,
        iterations,
    };
    let res = match sharded {
        Some(block) => simulate_sharded(
            &sim,
            &crate::ShardedCounter {
                ranks_per_node: platform.cores_per_node() as usize,
                block,
                shard_service: platform.shm.atomic_cost(),
                shard_latency: 2.0 * platform.shm.atomic_cost(),
            },
        ),
        None => simulate(&sim),
    };
    Fig6Point {
        cores,
        minutes: res.makespan / 60.0,
    }
}

/// Computes one Figure 6 point (paper configuration: no §VIII extensions).
pub fn point(platform: &Platform, backend: Backend, phase: ProxyPhase, cores: usize) -> Fig6Point {
    point_with(platform, backend, phase, cores, Fig6Opts::default())
}

/// ARMCI-MPI series with ablation options.
pub fn series_with(id: PlatformId, phase: ProxyPhase, opts: Fig6Opts) -> Vec<Fig6Point> {
    let platform = Platform::get(id);
    core_counts(id)
        .into_iter()
        .map(|c| point_with(&platform, Backend::ArmciMpi, phase, c, opts))
        .collect()
}

/// A full series for one platform/backend/phase.
pub fn series(id: PlatformId, backend: Backend, phase: ProxyPhase) -> Vec<Fig6Point> {
    let platform = Platform::get(id);
    core_counts(id)
        .into_iter()
        .map(|c| point(&platform, backend, phase, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_ratio(id: PlatformId, phase: ProxyPhase) -> (Vec<Fig6Point>, Vec<Fig6Point>, f64) {
        let mpi = series(id, Backend::ArmciMpi, phase);
        let nat = series(id, Backend::Native, phase);
        let r = mpi[0].minutes / nat[0].minutes;
        (mpi, nat, r)
    }

    #[test]
    fn all_series_have_positive_times() {
        for id in PlatformId::ALL {
            for phase in phases(id) {
                for backend in [Backend::ArmciMpi, Backend::Native] {
                    for p in series(id, backend, phase) {
                        assert!(p.minutes > 0.0, "{id:?} {backend:?} {phase:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn ccsd_time_decreases_with_cores_for_mpi_everywhere() {
        for id in PlatformId::ALL {
            let s = series(id, Backend::ArmciMpi, ProxyPhase::Ccsd);
            for w in s.windows(2) {
                assert!(
                    w[1].minutes <= w[0].minutes * 1.02,
                    "{id:?}: {} cores {:.2} min → {} cores {:.2} min",
                    w[0].cores,
                    w[0].minutes,
                    w[1].cores,
                    w[1].minutes
                );
            }
        }
    }

    #[test]
    fn infiniband_native_wins_ccsd_by_sizeable_factor() {
        let (_, _, r) = last_ratio(PlatformId::InfiniBandCluster, ProxyPhase::Ccsd);
        assert!(r > 1.4 && r < 3.0, "IB CCSD mpi/native ratio {r}");
    }

    #[test]
    fn infiniband_triples_gap_smaller_than_ccsd_gap() {
        let (_, _, rc) = last_ratio(PlatformId::InfiniBandCluster, ProxyPhase::Ccsd);
        let (_, _, rt) = last_ratio(PlatformId::InfiniBandCluster, ProxyPhase::Triples);
        assert!(rt < rc, "triples ratio {rt} vs ccsd ratio {rc}");
        assert!(rt > 0.9, "triples should not flip on IB: {rt}");
    }

    #[test]
    fn blue_gene_is_comparable() {
        let (_, _, r) = last_ratio(PlatformId::BlueGeneP, ProxyPhase::Ccsd);
        assert!(r > 0.95 && r < 1.5, "BG/P CCSD ratio {r}");
    }

    #[test]
    fn cray_xt_mpi_modestly_slower() {
        let (_, _, r) = last_ratio(PlatformId::CrayXT5, ProxyPhase::Ccsd);
        assert!(r > 1.05 && r < 1.6, "XT5 CCSD ratio {r}");
    }

    #[test]
    fn cray_xe_mpi_wins_and_native_worsens_at_scale() {
        let mpi = series(PlatformId::CrayXE6, Backend::ArmciMpi, ProxyPhase::Ccsd);
        let nat = series(PlatformId::CrayXE6, Backend::Native, ProxyPhase::Ccsd);
        // ARMCI-MPI faster at every plotted point
        for (m, n) in mpi.iter().zip(&nat) {
            assert!(m.minutes < n.minutes, "{} cores", m.cores);
        }
        // ARMCI-MPI keeps improving to the end
        assert!(mpi.last().unwrap().minutes < mpi[0].minutes);
        // the native curve turns around (worsens) at high core counts
        let min_nat = nat.iter().map(|p| p.minutes).fold(f64::INFINITY, f64::min);
        let last_nat = nat.last().unwrap().minutes;
        assert!(
            last_nat > 1.2 * min_nat,
            "native XE should worsen: min {min_nat} last {last_nat}"
        );
    }

    #[test]
    fn cray_xe_triples_native_flattens_while_mpi_improves() {
        let mpi = series(PlatformId::CrayXE6, Backend::ArmciMpi, ProxyPhase::Triples);
        let nat = series(PlatformId::CrayXE6, Backend::Native, ProxyPhase::Triples);
        let mpi_gain = mpi[0].minutes / mpi.last().unwrap().minutes;
        let nat_gain = nat[0].minutes / nat.last().unwrap().minutes;
        assert!(
            mpi_gain > nat_gain,
            "mpi gain {mpi_gain} vs native {nat_gain}"
        );
    }

    #[test]
    fn access_modes_close_most_of_the_infiniband_gap() {
        // §VIII-A ablation: with read-only/accumulate-only hints the
        // exclusive-epoch serialisation vanishes and ARMCI-MPI approaches
        // the raw-bandwidth gap.
        let id = PlatformId::InfiniBandCluster;
        let std = series(id, Backend::ArmciMpi, ProxyPhase::Ccsd);
        let hinted = series_with(
            id,
            ProxyPhase::Ccsd,
            Fig6Opts {
                access_modes: true,
                mpi3_rmw: false,
                nxtval_shard: None,
                progress_agent: false,
            },
        );
        let nat = series(id, Backend::Native, ProxyPhase::Ccsd);
        let gap_std = std[0].minutes / nat[0].minutes;
        let gap_hinted = hinted[0].minutes / nat[0].minutes;
        assert!(
            gap_hinted < gap_std,
            "hints should help: {gap_hinted} vs {gap_std}"
        );
        assert!(
            gap_hinted < 1.4,
            "hinted gap should be near raw bandwidth: {gap_hinted}"
        );
    }

    #[test]
    fn mpi3_rmw_matters_only_when_counter_contended() {
        // At moderate scale the NXTVAL server is uncontended and MPI-3
        // atomics barely move the needle; they are insurance at scale.
        let id = PlatformId::CrayXT5;
        let std = series(id, Backend::ArmciMpi, ProxyPhase::Ccsd);
        let fast = series_with(
            id,
            ProxyPhase::Ccsd,
            Fig6Opts {
                access_modes: false,
                mpi3_rmw: true,
                nxtval_shard: None,
                progress_agent: false,
            },
        );
        for (a, b) in std.iter().zip(&fast) {
            assert!(b.minutes <= a.minutes * 1.001, "mpi3 rmw must not hurt");
        }
    }

    #[test]
    fn progress_agent_collapses_serialisation_on_infiniband_ccsd() {
        // Agent ablation: with passive-target service offloaded to the
        // per-node agent, the exclusive-epoch serialisation collapses to
        // the agent's residual contention and ARMCI-MPI closes most of
        // the CCSD gap — despite donating one core per node.
        let id = PlatformId::InfiniBandCluster;
        let std = series(id, Backend::ArmciMpi, ProxyPhase::Ccsd);
        let agented = series_with(
            id,
            ProxyPhase::Ccsd,
            Fig6Opts {
                progress_agent: true,
                ..Fig6Opts::default()
            },
        );
        let nat = series(id, Backend::Native, ProxyPhase::Ccsd);
        for (a, s) in agented.iter().zip(&std) {
            assert!(a.minutes < s.minutes, "{} cores", a.cores);
        }
        let gap_std = std[0].minutes / nat[0].minutes;
        let gap_agent = agented[0].minutes / nat[0].minutes;
        assert!(
            gap_agent < gap_std && gap_agent < 1.5,
            "agent gap {gap_agent} vs std {gap_std}"
        );
    }

    #[test]
    fn progress_agent_taxes_compute_bound_phases() {
        // With access-mode hints there is no serialisation left to
        // collapse; the agent is pure cost (a donated core per node and
        // a service round per task) and must not look like a free win.
        let id = PlatformId::InfiniBandCluster;
        let hinted = Fig6Opts {
            access_modes: true,
            ..Fig6Opts::default()
        };
        let std = series_with(id, ProxyPhase::Triples, hinted);
        let agented = series_with(
            id,
            ProxyPhase::Triples,
            Fig6Opts {
                progress_agent: true,
                ..hinted
            },
        );
        for (a, s) in agented.iter().zip(&std) {
            assert!(
                a.minutes >= s.minutes,
                "{} cores: agent {:.2} vs hinted {:.2}",
                a.cores,
                a.minutes,
                s.minutes
            );
        }
    }

    #[test]
    fn triples_costs_more_than_one_ccsd_iteration() {
        let p = Platform::get(PlatformId::InfiniBandCluster);
        let c = point(&p, Backend::Native, ProxyPhase::Ccsd, 256);
        let t = point(&p, Backend::Native, ProxyPhase::Triples, 256);
        // (T) (one sweep) costs more than CCSD-per-iteration (10 sweeps
        // are in c.minutes)
        assert!(t.minutes > c.minutes / 10.0);
    }
}
