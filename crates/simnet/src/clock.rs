//! Per-rank virtual clocks.
//!
//! Each simulated process owns a [`VClock`] measuring seconds of virtual
//! time. Clocks are advanced by the cost model on every communication call.
//! Collective operations synchronise the clocks of all participants to the
//! maximum (everyone leaves a barrier together).
//!
//! The clock is an atomic `f64` (stored as bits in an `AtomicU64`) so that
//! collectives executed by one thread can read and bump the clocks of its
//! peers without extra locking.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically non-decreasing virtual clock, in seconds.
#[derive(Debug, Default)]
pub struct VClock {
    bits: AtomicU64,
}

impl VClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        VClock {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Advances the clock by `dt` seconds. Negative or non-finite `dt` is a
    /// programming error in the cost model and panics in debug builds.
    pub fn advance(&self, dt: f64) {
        debug_assert!(dt.is_finite() && dt >= 0.0, "bad clock delta {dt}");
        // Single-writer in practice (only the owning rank advances its own
        // clock outside collectives), but CAS-loop for safety.
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + dt).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Moves the clock forward to at least `t` seconds (no-op if already
    /// past `t`).
    pub fn advance_to(&self, t: f64) {
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            if f64::from_bits(cur) >= t {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                t.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Resets the clock to zero. Used between benchmark phases.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Release);
    }
}

/// Synchronises a set of clocks to `max(now) + extra`, returning the new
/// common time. This models a collective: no participant leaves before the
/// slowest one arrives, and the collective itself costs `extra` seconds.
pub fn sync_max(clocks: &[&VClock], extra: f64) -> f64 {
    let t = clocks.iter().map(|c| c.now()).fold(0.0f64, f64::max) + extra;
    for c in clocks {
        c.advance_to(t);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VClock::new();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VClock::new();
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VClock::new();
        c.advance_to(2.0);
        assert_eq!(c.now(), 2.0);
        c.advance_to(1.0); // must not go backwards
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn sync_max_brings_all_to_common_time() {
        let a = VClock::new();
        let b = VClock::new();
        a.advance(3.0);
        b.advance(1.0);
        let t = sync_max(&[&a, &b], 0.5);
        assert!((t - 3.5).abs() < 1e-12);
        assert_eq!(a.now(), t);
        assert_eq!(b.now(), t);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = VClock::new();
        c.advance(9.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn concurrent_advances_are_not_lost() {
        use std::sync::Arc;
        let c = Arc::new(VClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(0.001);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!((c.now() - 8.0).abs() < 1e-6);
    }
}
