//! Platform registry (paper Table II) with calibrated cost parameters.
//!
//! Each platform carries two [`BackendParams`]: `native` (the vendor /
//! ARMCI-team implementation) and `mpi` (the MPI RMA implementation that
//! ARMCI-MPI runs on). Parameter values are calibrated against the paper's
//! Figures 3–5; the qualitative relations the calibration must satisfy are
//! asserted in this module's tests:
//!
//! * **Blue Gene/P** — MPI get/put slightly below native, acc clearly below;
//!   slow cores make packing expensive (low `pack_rate`).
//! * **InfiniBand cluster** — native is the most aggressively tuned: MPI
//!   trails for get/put and the double-precision accumulate gap exceeds
//!   1.5 GB/s at large sizes; the MVAPICH2 batched-op bug hurts large
//!   batches.
//! * **Cray XT5** — comparable below 32 KiB, MPI reaches only half the
//!   native bandwidth above it.
//! * **Cray XE6** — the native port is a development release: MPI achieves
//!   roughly 2× native bandwidth for put/get and ~25% more for acc.

use crate::cost::{BackendParams, ChannelParams, LinkParams, ProgressParams, ShmParams};
use crate::registration::RegParams;
use serde::Serialize;

/// The four systems of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PlatformId {
    BlueGeneP,
    InfiniBandCluster,
    CrayXT5,
    CrayXE6,
}

impl PlatformId {
    /// All platforms, in the paper's presentation order.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::BlueGeneP,
        PlatformId::InfiniBandCluster,
        PlatformId::CrayXT5,
        PlatformId::CrayXE6,
    ];

    /// Short name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::BlueGeneP => "Blue Gene/P",
            PlatformId::InfiniBandCluster => "InfiniBand Cluster",
            PlatformId::CrayXT5 => "Cray XT5",
            PlatformId::CrayXE6 => "Cray XE6",
        }
    }
}

/// Compute-side parameters used by the NWChem proxy.
#[derive(Debug, Clone, Serialize)]
pub struct ComputeParams {
    /// Sustained DGEMM rate per core, flops/second.
    pub flops_per_core: f64,
}

/// A platform: Table II row plus calibrated cost models.
///
/// ```
/// use simnet::{Platform, PlatformId, Op};
///
/// let ib = Platform::get(PlatformId::InfiniBandCluster);
/// assert_eq!(ib.system, "Fusion");
/// // 1 MiB native get approaches wire speed; MPI trails
/// let native = ib.native.get.bandwidth(1 << 20);
/// let mpi = ib.mpi.get.bandwidth(1 << 20);
/// assert!(native > mpi);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct Platform {
    pub id: PlatformId,
    pub name: &'static str,
    /// System name from Table II (e.g. "Intrepid").
    pub system: &'static str,
    pub nodes: u32,
    /// Sockets per node.
    pub sockets_per_node: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// GiB of memory per node.
    pub memory_per_node_gib: u32,
    pub interconnect: &'static str,
    pub mpi_version: &'static str,
    pub native: BackendParams,
    pub mpi: BackendParams,
    /// Intra-node shared-memory tier (load/store through a
    /// `Win_allocate_shared` slab); see [`ShmParams`].
    pub shm: ShmParams,
    /// RAMC-style remote memory channel backend (doorbell + completion
    /// queue over the same wire); see [`ChannelParams`].
    pub channel: ChannelParams,
    /// Per-node asynchronous progress agent model; see [`ProgressParams`].
    pub progress: ProgressParams,
    pub reg: RegParams,
    pub compute: ComputeParams,
}

impl Platform {
    /// Cores per node.
    pub fn cores_per_node(&self) -> u32 {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Node hosting `rank` under the dense block mapping the schedulers
    /// on every Table II system use (ranks 0..cores_per_node on node 0,
    /// the next block on node 1, ...). This is the single authoritative
    /// rank → node mapping; call sites must not re-derive it by hand.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node() as usize
    }

    /// Whether two ranks share a node (and therefore a shared-memory
    /// window slab).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Looks up a platform by id.
    pub fn get(id: PlatformId) -> Platform {
        match id {
            PlatformId::BlueGeneP => blue_gene_p(),
            PlatformId::InfiniBandCluster => infiniband(),
            PlatformId::CrayXT5 => cray_xt5(),
            PlatformId::CrayXE6 => cray_xe6(),
        }
    }

    /// All platforms.
    pub fn all() -> Vec<Platform> {
        PlatformId::ALL
            .iter()
            .map(|&id| Platform::get(id))
            .collect()
    }

    /// Builds a custom platform from an existing one — the supported way
    /// to model a machine that is not in Table II: start from the closest
    /// calibrated platform and override parameters.
    ///
    /// ```
    /// use simnet::{Platform, PlatformId};
    ///
    /// let mut mine = Platform::get(PlatformId::InfiniBandCluster)
    ///     .customized("my-cluster");
    /// mine.mpi.put.peak = 12.5e9; // HDR InfiniBand
    /// assert_eq!(mine.system, "my-cluster");
    /// assert!(mine.mpi.put.bandwidth(64 << 20) > 12.0e9);
    /// ```
    pub fn customized(mut self, system: &'static str) -> Platform {
        self.system = system;
        self
    }
}

/// Default registration model: effectively free (non-IB platforms do not
/// exhibit the Figure 5 behaviour in the paper's study).
fn reg_trivial() -> RegParams {
    RegParams {
        bounce_threshold: usize::MAX,
        copy_rate: f64::INFINITY,
        pin_base: 0.0,
        pin_per_page: 0.0,
        page_size: 4096,
        nonpinned_bw_factor: 1.0,
    }
}

fn blue_gene_p() -> Platform {
    // 3D torus, 425 MB/s per link; slow (850 MHz) PPC450 cores make
    // packing expensive, which is why the *batched* method wins for large
    // segments in Figure 4a while datatypes win for small segments.
    let native = BackendParams {
        get: LinkParams::new(3.5e-6, 0.380e9),
        put: LinkParams::new(3.0e-6, 0.380e9),
        acc: LinkParams::new(4.0e-6, 0.300e9),
        epoch_overhead: 0.3e-6,
        op_overhead: 0.4e-6,
        seg_overhead: 0.9e-6,
        pack_rate: 1.2e9,
        dtype_setup: 2.0e-6,
        dtype_seg_overhead: 90e-9,
        batched_bug: None,
        rmw_latency: 4.0e-6,
        acc_combine_rate: 0.8e9,
    };
    let mpi = BackendParams {
        get: LinkParams::new(5.0e-6, 0.340e9),
        put: LinkParams::new(4.5e-6, 0.340e9),
        acc: LinkParams::new(6.0e-6, 0.200e9),
        epoch_overhead: 2.0e-6,
        op_overhead: 0.8e-6,
        seg_overhead: 1.1e-6,
        // Slow cores: packing below 1 GB/s, so direct datatypes lose for
        // large segments but win for small ones (per-segment overheads are
        // tiny relative to batched issue costs).
        pack_rate: 0.8e9,
        dtype_setup: 3.0e-6,
        dtype_seg_overhead: 60e-9,
        batched_bug: None,
        rmw_latency: 5.0e-6,
        acc_combine_rate: 0.5e9,
    };
    // 850 MHz PPC450: memcpy well under 2 GB/s, but still far above the
    // 0.34 GB/s torus links, and the per-op alpha is an order of
    // magnitude below the wire latencies.
    let shm = ShmParams {
        copy: LinkParams::new(0.30e-6, 1.6e9),
        acc: LinkParams::new(0.35e-6, 0.7e9),
        win_sync: 0.15e-6,
        lock_overhead: 0.25e-6,
    };
    let channel = ChannelParams::derived(&mpi);
    let progress = ProgressParams::derived(&mpi);
    Platform {
        id: PlatformId::BlueGeneP,
        name: PlatformId::BlueGeneP.name(),
        system: "Intrepid",
        nodes: 40_960,
        sockets_per_node: 1,
        cores_per_socket: 4,
        memory_per_node_gib: 2,
        interconnect: "3D Torus",
        mpi_version: "IBM MPI",
        native,
        mpi,
        shm,
        channel,
        progress,
        reg: reg_trivial(),
        compute: ComputeParams {
            flops_per_core: 2.7e9,
        },
    }
}

fn infiniband() -> Platform {
    // QDR InfiniBand; the native port is the ARMCI team's flagship.
    let native = BackendParams {
        get: LinkParams::new(1.8e-6, 3.2e9),
        put: LinkParams::new(1.5e-6, 3.2e9),
        acc: LinkParams::new(2.2e-6, 2.6e9),
        epoch_overhead: 0.2e-6,
        op_overhead: 0.3e-6,
        seg_overhead: 0.08e-6,
        pack_rate: 5.0e9,
        dtype_setup: 1.0e-6,
        dtype_seg_overhead: 25e-9,
        batched_bug: None,
        rmw_latency: 1.9e-6,
        acc_combine_rate: 4.0e9,
    };
    let mpi = BackendParams {
        get: LinkParams::new(3.2e-6, 2.8e9),
        put: LinkParams::new(2.9e-6, 2.8e9),
        // The >1.5 GB/s accumulate gap of Figure 3b.
        acc: LinkParams::new(4.0e-6, 0.9e9),
        epoch_overhead: 1.6e-6,
        op_overhead: 0.5e-6,
        seg_overhead: 0.4e-6,
        // pack throughput caps the direct method for large segments
        // (Figure 4b: batched beats direct at 1 KiB segments)
        pack_rate: 2.5e9,
        dtype_setup: 1.8e-6,
        dtype_seg_overhead: 30e-9,
        // MPICH2 batched-op bug, fixed upstream but not yet in MVAPICH2
        // at the time of the paper: large batches fall off a cliff.
        batched_bug: Some(48.0),
        rmw_latency: 2.5e-6,
        acc_combine_rate: 3.0e9,
    };
    // Nehalem-class cores: single-core memcpy near the 4.5 GB/s copy
    // rate the registration model already uses, sub-microsecond handoff.
    let shm = ShmParams {
        copy: LinkParams::new(0.12e-6, 4.8e9),
        acc: LinkParams::new(0.15e-6, 2.4e9),
        win_sync: 0.08e-6,
        lock_overhead: 0.15e-6,
    };
    let channel = ChannelParams::derived(&mpi);
    let progress = ProgressParams::derived(&mpi);
    Platform {
        id: PlatformId::InfiniBandCluster,
        name: PlatformId::InfiniBandCluster.name(),
        system: "Fusion",
        nodes: 320,
        sockets_per_node: 2,
        cores_per_socket: 4,
        memory_per_node_gib: 36,
        interconnect: "InfiniBand QDR",
        mpi_version: "MVAPICH2 1.6",
        native,
        mpi,
        shm,
        channel,
        progress,
        reg: RegParams {
            bounce_threshold: 8 << 10,
            copy_rate: 4.5e9,
            pin_base: 40e-6,
            pin_per_page: 0.45e-6,
            page_size: 4096,
            nonpinned_bw_factor: 0.35,
        },
        compute: ComputeParams {
            flops_per_core: 8.0e9,
        },
    }
}

fn cray_xt5() -> Platform {
    let native = BackendParams {
        get: LinkParams::new(5.5e-6, 2.1e9),
        put: LinkParams::new(5.0e-6, 2.1e9),
        acc: LinkParams::new(6.0e-6, 1.7e9),
        epoch_overhead: 0.3e-6,
        op_overhead: 0.4e-6,
        seg_overhead: 0.35e-6,
        pack_rate: 4.0e9,
        dtype_setup: 1.5e-6,
        dtype_seg_overhead: 35e-9,
        batched_bug: None,
        rmw_latency: 4.5e-6,
        acc_combine_rate: 3.5e9,
    };
    let mut mpi_get = LinkParams::new(6.5e-6, 2.0e9);
    let mut mpi_put = LinkParams::new(6.0e-6, 2.0e9);
    let mut mpi_acc = LinkParams::new(7.5e-6, 1.5e9);
    // Figure 3c: beyond 32 KiB MPI achieves half the native bandwidth.
    mpi_get.large_penalty = Some((32 << 10, 0.5));
    mpi_put.large_penalty = Some((32 << 10, 0.5));
    mpi_acc.large_penalty = Some((32 << 10, 0.5));
    let mpi = BackendParams {
        get: mpi_get,
        put: mpi_put,
        acc: mpi_acc,
        epoch_overhead: 2.2e-6,
        op_overhead: 0.9e-6,
        seg_overhead: 1.4e-6,
        pack_rate: 3.5e9,
        dtype_setup: 2.0e-6,
        dtype_seg_overhead: 40e-9,
        batched_bug: None,
        rmw_latency: 5.5e-6,
        acc_combine_rate: 3.0e9,
    };
    // Istanbul Opterons: NUMA hop keeps the effective single-core copy
    // rate a bit under the Nehalem cluster's.
    let shm = ShmParams {
        copy: LinkParams::new(0.15e-6, 4.2e9),
        acc: LinkParams::new(0.18e-6, 2.0e9),
        win_sync: 0.10e-6,
        lock_overhead: 0.18e-6,
    };
    let channel = ChannelParams::derived(&mpi);
    let progress = ProgressParams::derived(&mpi);
    Platform {
        id: PlatformId::CrayXT5,
        name: PlatformId::CrayXT5.name(),
        system: "Jaguar PF",
        nodes: 18_688,
        sockets_per_node: 2,
        cores_per_socket: 6,
        memory_per_node_gib: 16,
        interconnect: "Seastar 2+",
        mpi_version: "Cray MPI",
        native,
        mpi,
        shm,
        channel,
        progress,
        reg: reg_trivial(),
        compute: ComputeParams {
            flops_per_core: 9.2e9,
        },
    }
}

fn cray_xe6() -> Platform {
    // Gemini interconnect; the native ARMCI port is a development release
    // and underperforms — the one platform where ARMCI-MPI wins outright.
    let native = BackendParams {
        get: LinkParams::new(4.5e-6, 0.75e9),
        put: LinkParams::new(4.2e-6, 0.75e9),
        acc: LinkParams::new(5.0e-6, 0.80e9),
        epoch_overhead: 0.4e-6,
        op_overhead: 0.6e-6,
        seg_overhead: 0.5e-6,
        pack_rate: 3.0e9,
        dtype_setup: 1.8e-6,
        dtype_seg_overhead: 45e-9,
        batched_bug: None,
        rmw_latency: 3.0e-6,
        acc_combine_rate: 2.5e9,
    };
    let mpi = BackendParams {
        get: LinkParams::new(2.6e-6, 1.5e9),
        put: LinkParams::new(2.4e-6, 1.5e9),
        acc: LinkParams::new(3.2e-6, 1.0e9),
        epoch_overhead: 1.4e-6,
        op_overhead: 0.5e-6,
        seg_overhead: 0.6e-6,
        pack_rate: 4.5e9,
        dtype_setup: 1.6e-6,
        dtype_seg_overhead: 30e-9,
        batched_bug: None,
        rmw_latency: 2.2e-6,
        // Gemini's BTE does the combine off the critical path; the acc
        // link peak above already reflects the end-to-end rate, so the
        // separate combine term is negligible (keeps the paper's +25%
        // MPI-over-native acc advantage visible end to end).
        acc_combine_rate: 30e9,
    };
    // Magny-Cours: 24 cores over 4 NUMA dies, strong aggregate copy rate.
    let shm = ShmParams {
        copy: LinkParams::new(0.12e-6, 5.2e9),
        acc: LinkParams::new(0.15e-6, 2.4e9),
        win_sync: 0.08e-6,
        lock_overhead: 0.15e-6,
    };
    let channel = ChannelParams::derived(&mpi);
    let progress = ProgressParams::derived(&mpi);
    Platform {
        id: PlatformId::CrayXE6,
        name: PlatformId::CrayXE6.name(),
        system: "Hopper II",
        nodes: 6_392,
        sockets_per_node: 2,
        cores_per_socket: 12,
        memory_per_node_gib: 32,
        interconnect: "Gemini",
        mpi_version: "Cray MPI",
        native,
        mpi,
        shm,
        channel,
        progress,
        reg: reg_trivial(),
        compute: ComputeParams {
            flops_per_core: 8.4e9,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIG: usize = 8 << 20;

    #[test]
    fn table2_rows_match_paper() {
        let bgp = Platform::get(PlatformId::BlueGeneP);
        assert_eq!(bgp.nodes, 40_960);
        assert_eq!(bgp.cores_per_node(), 4);
        let ib = Platform::get(PlatformId::InfiniBandCluster);
        assert_eq!(ib.nodes, 320);
        assert_eq!(ib.cores_per_node(), 8);
        let xt = Platform::get(PlatformId::CrayXT5);
        assert_eq!(xt.nodes, 18_688);
        assert_eq!(xt.cores_per_node(), 12);
        let xe = Platform::get(PlatformId::CrayXE6);
        assert_eq!(xe.nodes, 6_392);
        assert_eq!(xe.cores_per_node(), 24);
    }

    #[test]
    fn bgp_mpi_close_to_native_for_get_put() {
        let p = Platform::get(PlatformId::BlueGeneP);
        let nat = p.native.get.bandwidth(BIG);
        let mpi = p.mpi.get.bandwidth(BIG);
        assert!(mpi < nat);
        assert!(mpi > 0.8 * nat, "mpi {mpi} vs native {nat}");
    }

    #[test]
    fn ib_acc_gap_exceeds_1_5_gbs() {
        let p = Platform::get(PlatformId::InfiniBandCluster);
        let gap = p.native.acc.bandwidth(BIG) - p.mpi.acc.bandwidth(BIG);
        assert!(gap > 1.5e9, "gap {gap}");
    }

    #[test]
    fn xt5_mpi_half_native_beyond_32k() {
        let p = Platform::get(PlatformId::CrayXT5);
        // comparable at 32 KiB
        let small = 32 << 10;
        let r_small = p.mpi.get.bandwidth(small) / p.native.get.bandwidth(small);
        assert!(r_small > 0.85, "ratio {r_small}");
        // roughly half at large sizes
        let r_big = p.mpi.get.bandwidth(BIG) / p.native.get.bandwidth(BIG);
        assert!(r_big > 0.4 && r_big < 0.6, "ratio {r_big}");
    }

    #[test]
    fn xe6_mpi_doubles_native_put_get() {
        let p = Platform::get(PlatformId::CrayXE6);
        let r = p.mpi.put.bandwidth(BIG) / p.native.put.bandwidth(BIG);
        assert!(r > 1.8 && r < 2.2, "ratio {r}");
        let racc = p.mpi.acc.bandwidth(BIG) / p.native.acc.bandwidth(BIG);
        assert!(racc > 1.15 && racc < 1.4, "acc ratio {racc}");
    }

    #[test]
    fn all_returns_four_platforms() {
        assert_eq!(Platform::all().len(), 4);
    }

    #[test]
    fn node_of_is_block_mapping() {
        let ib = Platform::get(PlatformId::InfiniBandCluster); // 8 cores/node
        assert_eq!(ib.node_of(0), 0);
        assert_eq!(ib.node_of(7), 0);
        assert_eq!(ib.node_of(8), 1);
        assert!(ib.same_node(0, 7));
        assert!(!ib.same_node(7, 8));
        let bgp = Platform::get(PlatformId::BlueGeneP); // 4 cores/node
        assert_eq!(bgp.node_of(5), 1);
    }

    #[test]
    fn channel_offload_beats_mpi_epoch_on_every_platform() {
        use crate::cost::Op;
        for p in Platform::all() {
            for bytes in [8usize, 1 << 10, 1 << 16, BIG] {
                let mpi = p.mpi.contig_epoch_cost(Op::Put, bytes);
                let chan = p.channel.contig_cost(bytes);
                assert!(
                    chan < mpi,
                    "{}: {bytes}B channel {chan} !< mpi {mpi}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn shm_tier_strictly_cheaper_than_wire_rma() {
        use crate::cost::Op;
        for p in Platform::all() {
            for op in [Op::Get, Op::Put, Op::Acc] {
                for bytes in [8usize, 1 << 10, 1 << 16, BIG] {
                    let wire = p.mpi.contig_epoch_cost(op, bytes);
                    let shm = p.shm.lock_overhead + p.shm.op_cost(op, bytes, 1);
                    assert!(
                        shm < wire,
                        "{}: {op:?} {bytes}B shm {shm} !< wire {wire}",
                        p.name
                    );
                }
            }
        }
    }
}
