//! Memory-registration (pinning) model for the interoperability study
//! (paper Figure 5).
//!
//! On InfiniBand, memory used for RDMA must be *pinned* (locked to physical
//! frames) and registered with the NIC. The native ARMCI implementation
//! allocates communication buffers from a prepinned pool; MVAPICH2 instead
//! registers on demand: transfers below a threshold are copied through
//! internal prepinned bounce buffers, larger transfers pin the user buffer
//! first (expensive) and then go zero-copy.
//!
//! The paper's Figure 5 measures four combinations of
//! `{ARMCI get, MPI get} × {ARMCI-allocated buffer, MPI-touched buffer}`.
//! [`RegistrationTracker`] reproduces those cost paths.

use crate::cost::LinkParams;
use serde::Serialize;
use std::collections::HashSet;

/// Registration model parameters.
#[derive(Debug, Clone, Serialize)]
pub struct RegParams {
    /// Transfers at or below this size are copied through prepinned bounce
    /// buffers when the user buffer is not registered (MVAPICH2 uses two
    /// pages = 8 KiB).
    pub bounce_threshold: usize,
    /// Copy rate through bounce buffers, bytes/second.
    pub copy_rate: f64,
    /// Fixed cost of an on-demand registration (ibv_reg_mr syscall path).
    pub pin_base: f64,
    /// Additional registration cost per page pinned.
    pub pin_per_page: f64,
    /// Page size in bytes.
    pub page_size: usize,
    /// Bandwidth multiplier applied when a runtime must fall back to its
    /// non-pinned communication path entirely (native ARMCI communicating
    /// from a foreign buffer).
    pub nonpinned_bw_factor: f64,
}

impl RegParams {
    /// First-touch cost of registering (pinning) `bytes` of memory:
    /// the fixed `ibv_reg_mr` syscall cost plus a per-page charge.
    pub fn pin_cost(&self, bytes: usize) -> f64 {
        let pages = bytes.div_ceil(self.page_size);
        self.pin_base + pages as f64 * self.pin_per_page
    }

    /// Cost of copying `bytes` through prepinned bounce buffers.
    pub fn bounce_cost(&self, bytes: usize) -> f64 {
        bytes as f64 / self.copy_rate
    }
}

/// How a local buffer was obtained, for the purposes of registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum BufferKind {
    /// Allocated from ARMCI's prepinned segment (`ARMCI_Malloc_local`).
    ArmciAlloc,
    /// Allocated with `MPI_Alloc_mem` and touched (registered) by MPI.
    MpiTouch,
    /// Plain heap memory unknown to either runtime.
    Unregistered,
}

/// Which runtime performs the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Mover {
    NativeArmci,
    Mpi,
}

/// Tracks which buffers each runtime has registered, and prices transfers.
///
/// Buffers are identified by an opaque id (in the simulation: the buffer's
/// base address or an allocation counter). Registration caches are *per
/// runtime*: the whole point of Figure 5 is that the two runtimes cannot
/// share registrations.
#[derive(Debug, Default)]
pub struct RegistrationTracker {
    armci_registered: HashSet<usize>,
    mpi_registered: HashSet<usize>,
}

impl RegistrationTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the allocation of a buffer, seeding the owning runtime's
    /// registration cache.
    pub fn allocate(&mut self, buf: usize, kind: BufferKind) {
        match kind {
            BufferKind::ArmciAlloc => {
                self.armci_registered.insert(buf);
            }
            BufferKind::MpiTouch => {
                self.mpi_registered.insert(buf);
            }
            BufferKind::Unregistered => {}
        }
    }

    /// Is `buf` registered with `mover`'s runtime?
    pub fn is_registered(&self, mover: Mover, buf: usize) -> bool {
        match mover {
            Mover::NativeArmci => self.armci_registered.contains(&buf),
            Mover::Mpi => self.mpi_registered.contains(&buf),
        }
    }

    /// Virtual time for a contiguous get of `bytes` from a remote window
    /// into local buffer `buf`, performed by `mover` whose base link is
    /// `link`, with registration behaviour `reg`.
    ///
    /// MVAPICH-style on-demand registration: the registration persists, so
    /// repeated transfers from the same large buffer only pay the pin once.
    /// The paper's benchmark reuses the buffer, but plots the *measured*
    /// on-demand penalty by forcing registration per size step; callers can
    /// reproduce either by clearing the cache between steps.
    pub fn get_cost(
        &mut self,
        mover: Mover,
        reg: &RegParams,
        link: &LinkParams,
        buf: usize,
        bytes: usize,
    ) -> f64 {
        match mover {
            Mover::Mpi => {
                if self.mpi_registered.contains(&buf) {
                    link.xfer_time(bytes)
                } else if bytes <= reg.bounce_threshold {
                    // Copy through internal prepinned buffers.
                    link.xfer_time(bytes) + bytes as f64 / reg.copy_rate
                } else {
                    // Pin on demand, then zero-copy; registration persists.
                    self.mpi_registered.insert(buf);
                    reg.pin_cost(bytes) + link.xfer_time(bytes)
                }
            }
            Mover::NativeArmci => {
                if self.armci_registered.contains(&buf) {
                    link.xfer_time(bytes)
                } else {
                    // Native ARMCI has no on-demand registration: it falls
                    // back to its (much slower) non-pinned protocol.
                    let slowed = LinkParams {
                        alpha: link.alpha,
                        peak: link.peak * reg.nonpinned_bw_factor,
                        large_penalty: link.large_penalty,
                    };
                    slowed.xfer_time(bytes)
                }
            }
        }
    }

    /// Forgets all on-demand MPI registrations (used by the Figure 5
    /// harness to expose the per-size registration penalty).
    pub fn clear_mpi_cache(&mut self) {
        self.mpi_registered.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RegParams, LinkParams) {
        (
            RegParams {
                bounce_threshold: 8 << 10,
                copy_rate: 4.5e9,
                pin_base: 40e-6,
                pin_per_page: 0.45e-6,
                page_size: 4096,
                nonpinned_bw_factor: 0.35,
            },
            LinkParams::new(2e-6, 3e9),
        )
    }

    #[test]
    fn registered_buffer_pays_only_link_time() {
        let (reg, link) = setup();
        let mut t = RegistrationTracker::new();
        t.allocate(1, BufferKind::MpiTouch);
        let c = t.get_cost(Mover::Mpi, &reg, &link, 1, 1 << 20);
        assert!((c - link.xfer_time(1 << 20)).abs() < 1e-15);
    }

    #[test]
    fn small_unregistered_mpi_transfer_bounces() {
        let (reg, link) = setup();
        let mut t = RegistrationTracker::new();
        t.allocate(1, BufferKind::ArmciAlloc);
        let bytes = 4 << 10;
        let c = t.get_cost(Mover::Mpi, &reg, &link, 1, bytes);
        let expect = link.xfer_time(bytes) + bytes as f64 / reg.copy_rate;
        assert!((c - expect).abs() < 1e-15);
        // bounce path does not register the buffer
        assert!(!t.is_registered(Mover::Mpi, 1));
    }

    #[test]
    fn large_unregistered_mpi_transfer_pins_once() {
        let (reg, link) = setup();
        let mut t = RegistrationTracker::new();
        let bytes = 64 << 10;
        let first = t.get_cost(Mover::Mpi, &reg, &link, 7, bytes);
        let second = t.get_cost(Mover::Mpi, &reg, &link, 7, bytes);
        assert!(first > second, "first {first} second {second}");
        assert!((second - link.xfer_time(bytes)).abs() < 1e-15);
    }

    #[test]
    fn registration_penalty_visible_just_above_threshold() {
        // The Figure 5 dip: right above 8 KiB the pin cost dominates and
        // effective bandwidth drops below the bounce path's.
        let (reg, link) = setup();
        let mut t = RegistrationTracker::new();
        let below = reg.bounce_threshold;
        let above = reg.bounce_threshold + 4096;
        let bw_below = below as f64 / t.get_cost(Mover::Mpi, &reg, &link, 1, below);
        let bw_above = above as f64 / t.get_cost(Mover::Mpi, &reg, &link, 2, above);
        assert!(bw_above < bw_below);
    }

    #[test]
    fn native_foreign_buffer_uses_nonpinned_path() {
        let (reg, link) = setup();
        let mut t = RegistrationTracker::new();
        t.allocate(3, BufferKind::MpiTouch);
        let bytes = 4 << 20;
        let own = {
            let mut t2 = RegistrationTracker::new();
            t2.allocate(4, BufferKind::ArmciAlloc);
            t2.get_cost(Mover::NativeArmci, &reg, &link, 4, bytes)
        };
        let foreign = t.get_cost(Mover::NativeArmci, &reg, &link, 3, bytes);
        assert!(foreign > 2.0 * own, "foreign {foreign} own {own}");
    }
}
