//! Per-link / per-NIC congestion queueing.
//!
//! The base cost model prices every operation independently: two ranks
//! blasting the same target each see the full link bandwidth, which a
//! real NIC does not offer ("Quo Vadis MPI RMA?" makes exactly this
//! complaint about per-op pricing). This module adds a shared-resource
//! layer: each node owns one NIC modelled as a FIFO queue with a
//! busy-until horizon. A transfer occupies both endpoints' NICs for its
//! serialization time (floored by a per-NIC message-rate limit), queues
//! behind whatever is already scheduled, and — when several flows
//! converge on one destination NIC at once — pays an incast penalty for
//! the switch-buffer pressure and reassembly stalls that fan-in causes.
//!
//! The model is deliberately *extra-delay shaped*: [`Network::admit`]
//! returns only the delay **beyond** the independently-priced cost, so a
//! quiet network reproduces the calibrated curves bit-for-bit and the
//! congestion knob defaults to off everywhere.

use std::sync::atomic::{AtomicU64, Ordering};

/// Knobs of the congestion model.
#[derive(Debug, Clone)]
pub struct CongestionParams {
    /// NIC message rate, messages/second: tiny messages occupy the NIC
    /// for at least `1/msg_rate` regardless of their byte count.
    pub msg_rate: f64,
    /// Occupancy multiplier applied at a destination NIC that is already
    /// draining another flow when a new one arrives (incast fan-in).
    pub incast_penalty: f64,
}

impl Default for CongestionParams {
    fn default() -> Self {
        CongestionParams {
            // ~2 M msgs/s is the right order for the QDR-era NICs of
            // Table II; the incast factor is conservative.
            msg_rate: 2.0e6,
            incast_penalty: 1.5,
        }
    }
}

/// One NIC's busy-until horizon, in virtual seconds (f64 bits in an
/// atomic so concurrently-issuing rank threads can reserve without
/// locks, mirroring [`crate::VClock`]).
#[derive(Debug)]
struct Nic {
    busy_until: AtomicU64,
}

impl Nic {
    fn new() -> Nic {
        Nic {
            busy_until: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn busy(&self) -> f64 {
        f64::from_bits(self.busy_until.load(Ordering::Acquire))
    }

    /// Reserves `occ` seconds of NIC time no earlier than `now`; returns
    /// the start of the reservation (= queueing ends).
    fn reserve(&self, now: f64, occ: f64) -> f64 {
        let mut cur = self.busy_until.load(Ordering::Acquire);
        loop {
            let start = f64::from_bits(cur).max(now);
            let next = (start + occ).to_bits();
            match self.busy_until.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return start,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// The congestion model: one [`Nic`] per node.
#[derive(Debug)]
pub struct Network {
    nics: Vec<Nic>,
    params: CongestionParams,
}

impl Network {
    /// A network of `nodes` NICs, all idle.
    pub fn new(nodes: usize, params: CongestionParams) -> Network {
        Network {
            nics: (0..nodes.max(1)).map(|_| Nic::new()).collect(),
            params,
        }
    }

    pub fn params(&self) -> &CongestionParams {
        &self.params
    }

    /// Admits a transfer of `ser` seconds wire serialization in `msgs`
    /// messages, from node `src` to node `dst`, issued at local virtual
    /// time `now`. Returns the **extra** delay the shared network imposes
    /// beyond the independently-priced cost: source-side injection
    /// queueing, destination-side drain queueing, and the incast
    /// inflation when the destination is already contended. Zero on an
    /// idle network and for node-local transfers.
    pub fn admit(&self, now: f64, src: usize, dst: usize, ser: f64, msgs: u64) -> f64 {
        if src == dst {
            return 0.0;
        }
        let occ = ser.max(msgs as f64 / self.params.msg_rate);
        let s_start = self.nic(src).reserve(now, occ);
        let dnic = self.nic(dst);
        // Another flow is still draining into `dst` → incast: this
        // transfer's drain occupancy inflates.
        let contended = dnic.busy() > now;
        let d_occ = if contended {
            occ * self.params.incast_penalty
        } else {
            occ
        };
        let d_start = dnic.reserve(now, d_occ);
        (s_start.max(d_start) - now) + (d_occ - occ)
    }

    /// All NICs back to idle (between benchmark phases).
    pub fn reset(&self) {
        for n in &self.nics {
            n.busy_until.store(0f64.to_bits(), Ordering::Release);
        }
    }

    fn nic(&self, node: usize) -> &Nic {
        // Out-of-range nodes (custom topologies smaller than the rank
        // count assumed at build time) fold onto the last NIC rather
        // than panicking in the middle of a charge.
        &self.nics[node.min(self.nics.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SER: f64 = 1e-6;

    #[test]
    fn idle_network_adds_nothing() {
        let net = Network::new(4, CongestionParams::default());
        assert_eq!(net.admit(0.0, 1, 0, SER, 1), 0.0);
        // Serial re-use after the wire drained is also free.
        assert_eq!(net.admit(10.0, 1, 0, SER, 1), 0.0);
    }

    #[test]
    fn node_local_transfers_bypass_the_nic() {
        let net = Network::new(2, CongestionParams::default());
        for _ in 0..8 {
            assert_eq!(net.admit(0.0, 1, 1, SER, 1), 0.0);
        }
    }

    /// The satellite requirement: N concurrent operations on one link
    /// must cost strictly more than N serial operations each priced
    /// against an idle network.
    #[test]
    fn concurrent_ops_on_one_link_cost_more_than_independent_pricing() {
        let params = CongestionParams::default();
        let n = 8;
        // Independent pricing: every op sees a fresh, idle network.
        let independent: f64 = (0..n)
            .map(|_| {
                let fresh = Network::new(10, params.clone());
                SER + fresh.admit(0.0, 1, 0, SER, 1)
            })
            .sum();
        assert!((independent - n as f64 * SER).abs() < 1e-18);
        // Concurrent: all ops from distinct sources hit the destination
        // NIC in the same instant and queue behind each other.
        let net = Network::new(10, params);
        let concurrent: f64 = (0..n).map(|i| SER + net.admit(0.0, 1 + i, 0, SER, 1)).sum();
        assert!(
            concurrent > independent,
            "concurrent {concurrent} should exceed independent {independent}"
        );
    }

    #[test]
    fn incast_penalty_inflates_the_second_flow() {
        let p = CongestionParams::default();
        let net = Network::new(4, p.clone());
        assert_eq!(net.admit(0.0, 1, 0, SER, 1), 0.0);
        let second = net.admit(0.0, 2, 0, SER, 1);
        // Queues behind the first drain AND pays the incast factor.
        let expected = SER + (p.incast_penalty - 1.0) * SER;
        assert!((second - expected).abs() < 1e-15, "got {second}");
    }

    #[test]
    fn message_rate_floors_tiny_message_occupancy() {
        let p = CongestionParams {
            msg_rate: 1.0e6,
            incast_penalty: 1.0,
        };
        let net = Network::new(4, p);
        // 1-byte ser is ~0, but the NIC is still held for 1/msg_rate.
        assert_eq!(net.admit(0.0, 1, 0, 1e-12, 1), 0.0);
        let second = net.admit(0.0, 2, 0, 1e-12, 1);
        assert!(second >= 1e-6 - 1e-12, "got {second}");
    }

    #[test]
    fn source_nic_serializes_injection() {
        let net = Network::new(4, CongestionParams::default());
        assert_eq!(net.admit(0.0, 0, 1, SER, 1), 0.0);
        // Same source, different destination: still queues at the source.
        let second = net.admit(0.0, 0, 2, SER, 1);
        assert!(second >= SER - 1e-15, "got {second}");
    }

    #[test]
    fn reset_returns_to_idle() {
        let net = Network::new(4, CongestionParams::default());
        net.admit(0.0, 1, 0, SER, 1);
        net.admit(0.0, 2, 0, SER, 1);
        net.reset();
        assert_eq!(net.admit(0.0, 3, 0, SER, 1), 0.0);
    }
}
