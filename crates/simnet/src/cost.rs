//! Communication cost functions.
//!
//! Every simulated backend (native ARMCI or MPI RMA) is described by a
//! [`BackendParams`] value. The functions here convert operation shapes
//! (contiguous size, segment count × segment size, datatype use) into
//! virtual-time durations.

use serde::Serialize;

/// One-sided operation kind. Accumulate pays an extra combine cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Op {
    Get,
    Put,
    Acc,
}

/// Postal-model parameters for one operation class on one backend.
#[derive(Debug, Clone, Serialize)]
pub struct LinkParams {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Asymptotic bandwidth, bytes/second.
    pub peak: f64,
    /// Optional `(threshold_bytes, factor)` large-message bandwidth
    /// penalty: for transfers larger than the threshold the effective
    /// bandwidth is `peak * factor`. Models the Cray XT MPI falloff beyond
    /// 32 KiB observed in Figure 3.
    pub large_penalty: Option<(usize, f64)>,
}

impl LinkParams {
    /// Simple postal model constructor.
    pub fn new(alpha: f64, peak: f64) -> Self {
        LinkParams {
            alpha,
            peak,
            large_penalty: None,
        }
    }

    /// Effective bandwidth for a transfer of `bytes`.
    pub fn effective_peak(&self, bytes: usize) -> f64 {
        match self.large_penalty {
            Some((thresh, factor)) if bytes > thresh => self.peak * factor,
            _ => self.peak,
        }
    }

    /// Time to move `bytes` contiguously: `α + n/β`.
    pub fn xfer_time(&self, bytes: usize) -> f64 {
        self.alpha + bytes as f64 / self.effective_peak(bytes)
    }

    /// Achieved bandwidth (bytes/sec) for a transfer of `bytes`.
    pub fn bandwidth(&self, bytes: usize) -> f64 {
        bytes as f64 / self.xfer_time(bytes)
    }
}

/// Cost parameters for one backend (native ARMCI or MPI RMA) on one
/// platform.
#[derive(Debug, Clone, Serialize)]
pub struct BackendParams {
    pub get: LinkParams,
    pub put: LinkParams,
    pub acc: LinkParams,
    /// Lock + unlock cost of one passive-target epoch (MPI) or of the
    /// native consistency fence (usually much smaller).
    pub epoch_overhead: f64,
    /// Per-operation issue cost inside an epoch (descriptor build, queue
    /// doorbell, ...).
    pub op_overhead: f64,
    /// Per-segment cost of the batched / native strided engines.
    pub seg_overhead: f64,
    /// Pack/unpack rate for datatype-based transfers, bytes/second.
    pub pack_rate: f64,
    /// One-off cost of building and committing a derived datatype.
    pub dtype_setup: f64,
    /// Per-segment cost while flattening / walking a derived datatype.
    pub dtype_seg_overhead: f64,
    /// If set, models the MVAPICH2/MPICH2 batched-ops performance bug on
    /// InfiniBand (Figure 4b): per-op overhead inflates by
    /// `1 + nsegs/scale` once many operations share an epoch.
    pub batched_bug: Option<f64>,
    /// Latency of a hardware / native atomic read-modify-write. For the
    /// MPI-2 backend RMW is built from mutexes instead (see `armci-mpi`);
    /// this value is used by the native backend and by the MPI-3
    /// `fetch_and_op` extension.
    pub rmw_latency: f64,
    /// Accumulate combine rate at the target, bytes/second of operand
    /// consumed (separate from link bandwidth; the effective acc curve
    /// already folds most of this in, this term covers the target-side CPU
    /// work for datatype accs).
    pub acc_combine_rate: f64,
}

/// Intra-node tier of the two-tier cost model: transfers between ranks
/// on one node move through a `Win_allocate_shared` slab by load/store
/// instead of NIC RMA, so they are priced as memcpy plus a slab-lock
/// round trip rather than with [`BackendParams`] wire parameters.
#[derive(Debug, Clone, Serialize)]
pub struct ShmParams {
    /// Contiguous copy through the shared slab (alpha is the per-op cost
    /// of the route decision + cacheline handoff, peak the single-core
    /// memcpy rate).
    pub copy: LinkParams,
    /// Element-wise accumulate into the slab: a read-modify-write stream
    /// at CPU rate, slower than plain memcpy.
    pub acc: LinkParams,
    /// One `MPI_Win_sync` (memory barrier + bookkeeping) under the
    /// separate-memory model.
    pub win_sync: f64,
    /// Acquire + release of the slab lock covering the target section
    /// (the shared window's lock discipline; replaces `epoch_overhead`).
    pub lock_overhead: f64,
}

impl ShmParams {
    /// Link parameters for `op`: accumulates pay the RMW stream rate,
    /// gets and puts the plain copy rate.
    pub fn link(&self, op: Op) -> &LinkParams {
        match op {
            Op::Get | Op::Put => &self.copy,
            Op::Acc => &self.acc,
        }
    }

    /// Virtual time of one intra-node transfer of `bytes` in `nsegs`
    /// pieces under an already-held slab lock: each segment restarts the
    /// copy loop, so alpha is paid per segment, bandwidth once.
    pub fn op_cost(&self, op: Op, bytes: usize, nsegs: usize) -> f64 {
        let link = self.link(op);
        nsegs.max(1) as f64 * link.alpha + bytes as f64 / link.effective_peak(bytes)
    }

    /// One 8-byte atomic on a shared slab: a cacheline-granular RMW
    /// stream of a single element — far below any wire atomic.
    pub fn atomic_cost(&self) -> f64 {
        self.op_cost(Op::Acc, 8, 1)
    }
}

/// Cost parameters for a RAMC-style remote-memory-channel backend
/// ("RAMC: Remote Access Memory Channels over HPE Slingshot"): the
/// initiator writes a descriptor and rings a **doorbell**, the NIC moves
/// contiguous payloads without further CPU involvement, and completions
/// are reaped from a **completion queue**. Anything the NIC cannot
/// express — noncontiguous datatypes, accumulates — runs on a software
/// fallback path built from contiguous channel operations.
#[derive(Debug, Clone, Serialize)]
pub struct ChannelParams {
    /// Wire link for offloaded contiguous transfers. Same NIC as the MPI
    /// backend (same peak and large-message behaviour) but no MPI
    /// software stack on the critical path, so per-message latency is
    /// lower.
    pub link: LinkParams,
    /// CPU cost of ringing the doorbell (descriptor write + MMIO store).
    pub doorbell: f64,
    /// CPU cost of reaping one completion from the queue.
    pub cq_poll: f64,
    /// Per-operation dispatch cost of the software fallback path
    /// (segment walk, bounce staging decisions).
    pub sw_overhead: f64,
    /// Target-side combine rate for software accumulates, bytes/second.
    pub acc_combine_rate: f64,
}

impl ChannelParams {
    /// Channel model derived from a platform's MPI wire parameters: the
    /// NIC is the same, the channel just bypasses the MPI software stack
    /// for contiguous transfers (lower alpha, cheap doorbell/poll) while
    /// the fallback path pays MPI-like per-op dispatch.
    pub fn derived(mpi: &BackendParams) -> ChannelParams {
        ChannelParams {
            link: LinkParams {
                alpha: 0.4 * mpi.put.alpha,
                peak: mpi.put.peak,
                large_penalty: mpi.put.large_penalty,
            },
            doorbell: 0.25 * mpi.op_overhead,
            cq_poll: 0.15 * mpi.op_overhead,
            sw_overhead: mpi.op_overhead,
            acc_combine_rate: mpi.acc_combine_rate,
        }
    }

    /// Offloaded contiguous operation: doorbell, wire transfer, one
    /// completion reaped.
    pub fn contig_cost(&self, bytes: usize) -> f64 {
        self.doorbell + self.link.xfer_time(bytes) + self.cq_poll
    }

    /// Software-fallback operation over `nsegs` segments: dispatch, one
    /// doorbell per segment (segments pipeline on the wire, so latency is
    /// paid once), wire transfer, one completion.
    pub fn sw_cost(&self, bytes: usize, nsegs: usize) -> f64 {
        self.sw_overhead
            + nsegs.max(1) as f64 * self.doorbell
            + self.link.xfer_time(bytes)
            + self.cq_poll
    }

    /// Extra target-side combine time for accumulating `bytes` of
    /// operands on the software path.
    pub fn combine_cost(&self, bytes: usize) -> f64 {
        bytes as f64 / self.acc_combine_rate
    }

    /// Wire serialization time of `bytes` (NIC occupancy for the
    /// congestion model; excludes latency and CPU overheads).
    pub fn ser_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.link.effective_peak(bytes)
    }

    /// One NIC-offloaded 8-byte atomic (fetch-and-op / compare-and-swap):
    /// doorbell, one wire round trip, one completion reaped. No MPI
    /// software stack and no epoch on the critical path.
    pub fn atomic_cost(&self) -> f64 {
        self.doorbell + self.link.alpha + self.cq_poll
    }
}

/// Cost parameters for a per-node **asynchronous progress agent**
/// (Casper / Zhou & Gracia style): one core per node is dedicated to
/// draining passive-target traffic — accumulates, RMW, lock handoffs,
/// flush acknowledgements — on behalf of ranks that are busy inside long
/// compute spans. Without an agent such operations wait on the *target*
/// entering the MPI library; with one, they pay a small intra-node
/// forward plus the agent's service time instead.
#[derive(Debug, Clone, Serialize)]
pub struct ProgressParams {
    /// Agent service time for one passive-target operation (lock grant,
    /// accumulate apply, RMW, flush ack), seconds.
    pub agent_service: f64,
    /// Intra-node forwarding cost to hand an inbound operation from the
    /// NIC/host rank to the agent core (shared-memory queue hop).
    pub agent_forward: f64,
    /// Fractional service-time inflation per additional host rank on the
    /// node: all of a node's ranks share one agent, so its queue deepens
    /// with the node's fan-in.
    pub host_contention: f64,
    /// Whether the platform can dedicate an agent core at all
    /// (`ProgressMode::Auto` falls back to host-side progress when not).
    pub available: bool,
}

impl ProgressParams {
    /// Agent model derived from a platform's MPI backend parameters: the
    /// agent runs the same software stack (service ≈ one op dispatch +
    /// epoch bookkeeping share) but is always inside the library, and the
    /// forward is one cacheline handoff on the node's memory system.
    pub fn derived(mpi: &BackendParams) -> ProgressParams {
        ProgressParams {
            agent_service: mpi.op_overhead + 0.5 * mpi.epoch_overhead,
            agent_forward: 0.3 * mpi.op_overhead,
            host_contention: 0.15,
            available: true,
        }
    }

    /// Cost of one agent-serviced operation round on a node hosting
    /// `ranks_per_node` application ranks.
    pub fn round_cost(&self, ranks_per_node: usize) -> f64 {
        let extra = ranks_per_node.saturating_sub(1) as f64;
        self.agent_forward + self.agent_service * (1.0 + self.host_contention * extra)
    }
}

impl BackendParams {
    /// Link parameters for `op`.
    pub fn link(&self, op: Op) -> &LinkParams {
        match op {
            Op::Get => &self.get,
            Op::Put => &self.put,
            Op::Acc => &self.acc,
        }
    }

    /// Cost of one contiguous one-sided operation issued in its own epoch.
    pub fn contig_epoch_cost(&self, op: Op, bytes: usize) -> f64 {
        self.epoch_overhead + self.op_overhead + self.link(op).xfer_time(bytes)
    }

    /// Cost of one contiguous operation inside an already-open epoch.
    pub fn contig_op_cost(&self, op: Op, bytes: usize) -> f64 {
        self.op_overhead + self.link(op).xfer_time(bytes)
    }

    /// Extra target-side combine time for accumulating `bytes` of operands.
    pub fn combine_cost(&self, bytes: usize) -> f64 {
        bytes as f64 / self.acc_combine_rate
    }
}

/// Per-strided-method cost breakdowns used by both ARMCI backends and the
/// figure harness. `nsegs` segments of `seg` bytes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum StridedMethodCost {
    /// One epoch per segment (ARMCI-MPI conservative IOV).
    Conservative,
    /// All segments in one epoch, one RMA op per segment (batched IOV).
    Batched,
    /// One RMA op with an indexed datatype covering all segments.
    IovDatatype,
    /// One RMA op with a subarray datatype built straight from the strided
    /// descriptor.
    DirectStrided,
    /// The native ARMCI strided engine.
    Native,
}

impl BackendParams {
    /// Virtual time for a strided transfer using the given method.
    pub fn strided_cost(&self, method: StridedMethodCost, op: Op, nsegs: usize, seg: usize) -> f64 {
        let total = nsegs * seg;
        let link = self.link(op);
        let n = nsegs as f64;
        match method {
            StridedMethodCost::Conservative => {
                n * (self.epoch_overhead + self.op_overhead + link.xfer_time(seg))
            }
            StridedMethodCost::Batched => {
                // One epoch; per-op issue costs; segment payloads pipeline so
                // latency is paid once.
                let op_over = match self.batched_bug {
                    Some(scale) => self.op_overhead * (1.0 + n / scale),
                    None => self.op_overhead,
                };
                self.epoch_overhead
                    + link.alpha
                    + n * (op_over + self.seg_overhead + seg as f64 / link.effective_peak(seg))
            }
            StridedMethodCost::IovDatatype | StridedMethodCost::DirectStrided => {
                // Build datatype, pack at origin, single wire transfer,
                // unpack at target. DirectStrided skips the IOV expansion so
                // its per-segment descriptor cost is lower.
                let seg_cost = if method == StridedMethodCost::DirectStrided {
                    0.5 * self.dtype_seg_overhead
                } else {
                    self.dtype_seg_overhead
                };
                let combine = if op == Op::Acc {
                    self.combine_cost(total)
                } else {
                    0.0
                };
                self.epoch_overhead
                    + self.op_overhead
                    + self.dtype_setup
                    + n * seg_cost
                    + 2.0 * (total as f64 / self.pack_rate)
                    + link.xfer_time(total)
                    + combine
            }
            StridedMethodCost::Native => {
                // Tuned native strided engine: no epochs, pipelined segments.
                link.alpha + n * (self.seg_overhead + seg as f64 / link.effective_peak(seg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BackendParams {
        BackendParams {
            get: LinkParams::new(2e-6, 3e9),
            put: LinkParams::new(2e-6, 3e9),
            acc: LinkParams::new(3e-6, 1e9),
            epoch_overhead: 1e-6,
            op_overhead: 0.5e-6,
            seg_overhead: 0.2e-6,
            pack_rate: 4e9,
            dtype_setup: 2e-6,
            dtype_seg_overhead: 30e-9,
            batched_bug: None,
            rmw_latency: 2e-6,
            acc_combine_rate: 4e9,
        }
    }

    #[test]
    fn postal_model_latency_dominates_small() {
        let l = LinkParams::new(1e-6, 1e9);
        // 1-byte message ≈ latency
        assert!((l.xfer_time(1) - 1.001e-6).abs() < 1e-12);
        // bandwidth of tiny messages is far below peak
        assert!(l.bandwidth(8) < 0.1 * l.peak);
    }

    #[test]
    fn postal_model_bandwidth_approaches_peak() {
        let l = LinkParams::new(1e-6, 1e9);
        let bw = l.bandwidth(64 << 20);
        assert!(bw > 0.99 * l.peak, "bw={bw}");
    }

    #[test]
    fn large_penalty_caps_bandwidth() {
        let mut l = LinkParams::new(1e-6, 2e9);
        l.large_penalty = Some((32 << 10, 0.5));
        assert_eq!(l.effective_peak(32 << 10), 2e9);
        assert_eq!(l.effective_peak((32 << 10) + 1), 1e9);
        let big = 16 << 20;
        assert!(l.bandwidth(big) < 1.01e9);
    }

    #[test]
    fn conservative_costs_epoch_per_segment() {
        let p = params();
        let one = p.strided_cost(StridedMethodCost::Conservative, Op::Put, 1, 64);
        let many = p.strided_cost(StridedMethodCost::Conservative, Op::Put, 100, 64);
        assert!((many - 100.0 * one).abs() < 1e-12);
    }

    #[test]
    fn batched_beats_conservative_for_many_segments() {
        let p = params();
        let b = p.strided_cost(StridedMethodCost::Batched, Op::Put, 1024, 16);
        let c = p.strided_cost(StridedMethodCost::Conservative, Op::Put, 1024, 16);
        assert!(b < c);
    }

    #[test]
    fn datatype_beats_batched_for_tiny_segments() {
        let p = params();
        let d = p.strided_cost(StridedMethodCost::IovDatatype, Op::Put, 1024, 16);
        let b = p.strided_cost(StridedMethodCost::Batched, Op::Put, 1024, 16);
        assert!(d < b, "dtype {d} vs batched {b}");
    }

    #[test]
    fn batched_bug_degrades_large_batches() {
        let mut p = params();
        let ok = p.strided_cost(StridedMethodCost::Batched, Op::Get, 1024, 16);
        p.batched_bug = Some(16.0);
        let buggy = p.strided_cost(StridedMethodCost::Batched, Op::Get, 1024, 16);
        assert!(buggy > 5.0 * ok);
    }

    #[test]
    fn direct_strided_cheaper_than_iov_datatype() {
        let p = params();
        let ds = p.strided_cost(StridedMethodCost::DirectStrided, Op::Get, 512, 16);
        let iv = p.strided_cost(StridedMethodCost::IovDatatype, Op::Get, 512, 16);
        assert!(ds < iv);
    }

    #[test]
    fn channel_offload_beats_mpi_own_epoch_contiguous() {
        let p = params();
        let ch = ChannelParams::derived(&p);
        for bytes in [8usize, 1 << 10, 1 << 20] {
            let mpi = p.contig_epoch_cost(Op::Put, bytes);
            let chan = ch.contig_cost(bytes);
            assert!(chan < mpi, "{bytes}B: channel {chan} vs mpi {mpi}");
        }
    }

    #[test]
    fn channel_sw_fallback_costs_more_than_offload() {
        let p = params();
        let ch = ChannelParams::derived(&p);
        let bytes = 64 << 10;
        assert!(ch.sw_cost(bytes, 64) > ch.contig_cost(bytes));
        // One-segment fallback still pays the software dispatch.
        assert!(ch.sw_cost(bytes, 1) > ch.contig_cost(bytes));
    }

    #[test]
    fn acc_pays_combine_cost_in_datatype_path() {
        let p = params();
        let put = p.strided_cost(StridedMethodCost::IovDatatype, Op::Put, 64, 1024);
        let acc = p.strided_cost(StridedMethodCost::IovDatatype, Op::Acc, 64, 1024);
        // acc link itself is slower AND pays the combine
        assert!(acc > put);
    }
}
