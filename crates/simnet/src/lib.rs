//! Virtual-time network simulation substrate.
//!
//! The paper evaluates ARMCI-MPI on four physical platforms (Table II). This
//! crate replaces those machines with *cost models*: every communication
//! primitive in the simulated MPI runtime (`mpisim`) and in the native
//! ARMCI baseline advances a per-rank **virtual clock** by a modelled
//! duration, while the data movement itself happens for real inside the
//! process. Bandwidth figures are then computed from virtual time, which
//! makes the reproduction deterministic and lets a laptop reproduce the
//! *shape* of curves measured on Blue Gene/P, an InfiniBand cluster, a Cray
//! XT5, and a Cray XE6.
//!
//! The model is deliberately simple and fully documented:
//!
//! * contiguous transfers follow the classic `t = α + n/β` postal model,
//!   optionally with a large-message bandwidth penalty (Cray XT MPI);
//! * passive-target epochs add a lock/unlock overhead per epoch and an issue
//!   overhead per operation;
//! * datatype (packed) transfers pay a pack/unpack rate plus per-segment
//!   descriptor costs;
//! * accumulates pay a floating-point combine cost at the target;
//! * InfiniBand memory registration is modelled explicitly (Figure 5):
//!   bounce-buffer copies below a pinning threshold and on-demand page
//!   pinning above it.
//!
//! Calibration targets are the published curves; see `EXPERIMENTS.md` at the
//! workspace root for the paper-vs-measured record.

pub mod clock;
pub mod cost;
pub mod net;
pub mod platform;
pub mod pool;
pub mod registration;

pub use clock::VClock;
pub use cost::{
    BackendParams, ChannelParams, LinkParams, Op, ProgressParams, ShmParams, StridedMethodCost,
};
pub use net::{CongestionParams, Network};
pub use platform::{ComputeParams, Platform, PlatformId};
pub use pool::{BufferPool, PoolBuf, PoolStats, RegistrationPolicy};
pub use registration::{BufferKind, RegParams, RegistrationTracker};
