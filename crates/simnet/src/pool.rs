//! Registration-aware scratch-buffer pool.
//!
//! Every layer of the stack needs short-lived byte buffers: accumulate
//! staging, IOV chunk batching, strided gather/scatter scratch, datatype
//! pack/unpack, bounce copies. Allocating a fresh `Vec` per operation has
//! two costs the paper cares about: the allocator churn itself, and — on
//! registered-memory networks (Figure 5) — the first-touch *pin* of pages
//! the NIC has never seen. [`BufferPool`] recycles size-classed buffers so
//! a steady-state workload pays registration once per class and then runs
//! at prepinned rates, which is exactly how native ARMCI's prepinned
//! segment and MVAPICH2's registration cache amortize pinning.
//!
//! The pool is per-rank (simulated ranks are threads; each owns its pool
//! behind an `Rc`) and is priced through [`RegParams`]:
//!
//! * [`RegistrationPolicy::OnDemand`] — a pool **miss** allocates and pins
//!   fresh pages (`RegParams::pin_cost`); a **hit** reuses already-pinned
//!   memory for free. This models the ARMCI-MPI backend over MVAPICH-style
//!   on-demand registration.
//! * [`RegistrationPolicy::Prepinned`] — registration is paid up front via
//!   [`BufferPool::prepin`]; misses that fit the prepinned budget carve
//!   from the segment at zero cost. This models native ARMCI.
//! * [`RegistrationPolicy::Unregistered`] — pure allocator recycling with
//!   no registration accounting (internal simulator scratch that never
//!   crosses the modelled NIC).

use crate::registration::RegParams;
use serde::Serialize;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Smallest size class, in bytes. Requests below this round up.
pub const MIN_CLASS_BYTES: usize = 64;

/// Default cap on memory parked in the pool's free lists. Buffers released
/// beyond this are dropped (unpinned) instead of cached.
pub const DEFAULT_MAX_CACHED_BYTES: usize = 16 << 20;

/// How pool memory relates to the platform's registration model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegistrationPolicy {
    /// Registration paid up front ([`BufferPool::prepin`]); misses carve
    /// from the prepinned segment while the budget lasts.
    Prepinned,
    /// Misses pin fresh pages at first touch (`RegParams::pin_cost`).
    OnDemand,
    /// No registration accounting; recycling only.
    Unregistered,
}

/// Cumulative pool counters. `reg_cost_s` is virtual time the owner is
/// expected to charge to its clock; the pool only accounts it.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PoolStats {
    /// Takes served from a free list (already-pinned memory).
    pub hits: u64,
    /// Takes that had to allocate (and, per policy, pin) fresh memory.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub releases: u64,
    /// Buffers dropped (unpinned) because the cache cap was reached.
    pub unpins: u64,
    /// Buffers currently leased out.
    pub outstanding: u64,
    /// Bytes currently pinned on behalf of the pool (cached + leased).
    pub pinned_bytes: usize,
    /// High-water mark of `pinned_bytes`.
    pub high_water_bytes: usize,
    /// Total registration cost accounted, in virtual seconds.
    pub reg_cost_s: f64,
}

impl PoolStats {
    /// Fraction of takes served from already-registered memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct PoolInner {
    policy: RegistrationPolicy,
    reg: RegParams,
    /// Free lists indexed by size class; every cached `Vec` has capacity
    /// equal to its class size exactly.
    classes: Vec<Vec<Vec<u8>>>,
    cached_bytes: usize,
    max_cached_bytes: usize,
    /// Bytes of prepinned segment not yet carved out (Prepinned policy).
    prepinned_remaining: usize,
    stats: PoolStats,
}

impl PoolInner {
    fn class_of(len: usize) -> usize {
        let len = len.max(MIN_CLASS_BYTES).next_power_of_two();
        (len.trailing_zeros() - MIN_CLASS_BYTES.trailing_zeros()) as usize
    }

    fn class_bytes(class: usize) -> usize {
        MIN_CLASS_BYTES << class
    }
}

/// Size-classed, per-rank scratch-buffer pool. Cheap to clone (shared
/// handle); not `Send` — each simulated rank owns its own.
#[derive(Clone)]
pub struct BufferPool {
    inner: Rc<RefCell<PoolInner>>,
}

impl BufferPool {
    pub fn new(policy: RegistrationPolicy, reg: RegParams) -> Self {
        Self {
            inner: Rc::new(RefCell::new(PoolInner {
                policy,
                reg,
                classes: Vec::new(),
                cached_bytes: 0,
                max_cached_bytes: DEFAULT_MAX_CACHED_BYTES,
                prepinned_remaining: 0,
                stats: PoolStats::default(),
            })),
        }
    }

    /// Registers `bytes` of prepinned segment up front and returns the
    /// one-time pin cost the owner should charge. Only meaningful under
    /// [`RegistrationPolicy::Prepinned`].
    pub fn prepin(&self, bytes: usize) -> f64 {
        let mut p = self.inner.borrow_mut();
        p.prepinned_remaining += bytes;
        let cost = p.reg.pin_cost(bytes);
        p.stats.reg_cost_s += cost;
        cost
    }

    /// Leases a zeroed buffer of exactly `len` bytes. The buffer returns
    /// to the pool when the [`PoolBuf`] drops. Inspect
    /// [`PoolBuf::was_hit`] / [`PoolBuf::reg_cost`] to charge virtual
    /// registration time.
    pub fn take(&self, len: usize) -> PoolBuf {
        let mut p = self.inner.borrow_mut();
        let class = PoolInner::class_of(len);
        if p.classes.len() <= class {
            p.classes.resize_with(class + 1, Vec::new);
        }
        let (mut buf, hit, reg_cost) = match p.classes[class].pop() {
            Some(v) => {
                p.cached_bytes -= v.capacity();
                p.stats.hits += 1;
                (v, true, 0.0)
            }
            None => {
                let cap = PoolInner::class_bytes(class);
                p.stats.misses += 1;
                let cost = match p.policy {
                    RegistrationPolicy::OnDemand => p.reg.pin_cost(cap),
                    RegistrationPolicy::Prepinned => {
                        if p.prepinned_remaining >= cap {
                            p.prepinned_remaining -= cap;
                            0.0
                        } else {
                            p.reg.pin_cost(cap)
                        }
                    }
                    RegistrationPolicy::Unregistered => 0.0,
                };
                p.stats.reg_cost_s += cost;
                p.stats.pinned_bytes += cap;
                p.stats.high_water_bytes = p.stats.high_water_bytes.max(p.stats.pinned_bytes);
                (Vec::with_capacity(cap), false, cost)
            }
        };
        buf.clear();
        buf.resize(len, 0);
        p.stats.outstanding += 1;
        // The pool has no clock of its own; the event is stamped with the
        // leasing thread's last known virtual time.
        obs::instant(obs::EventKind::Pool {
            bytes: len as u64,
            hit,
        });
        PoolBuf {
            buf,
            pool: Rc::clone(&self.inner),
            hit,
            reg_cost,
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// Zeroes the counters (capacity and cached buffers are kept).
    pub fn reset_stats(&self) {
        let mut p = self.inner.borrow_mut();
        let outstanding = p.stats.outstanding;
        let pinned = p.stats.pinned_bytes;
        p.stats = PoolStats {
            outstanding,
            pinned_bytes: pinned,
            high_water_bytes: pinned,
            ..PoolStats::default()
        };
    }

    /// Drops (unpins) every cached buffer, returning memory to the
    /// allocator. Leased buffers are unaffected and will be dropped
    /// rather than re-cached when released.
    pub fn unpin_all(&self) {
        let mut p = self.inner.borrow_mut();
        for class in &mut p.classes {
            for v in class.drain(..) {
                drop(v);
            }
        }
        let cached = p.cached_bytes;
        p.cached_bytes = 0;
        p.stats.pinned_bytes -= cached;
    }

    /// Adjusts the cache cap (bytes parked in free lists).
    pub fn set_max_cached_bytes(&self, bytes: usize) {
        self.inner.borrow_mut().max_cached_bytes = bytes;
    }

    pub fn policy(&self) -> RegistrationPolicy {
        self.inner.borrow().policy
    }
}

/// RAII lease of a pool buffer. Derefs to `[u8]` of the requested length;
/// returns its storage to the pool on drop.
pub struct PoolBuf {
    buf: Vec<u8>,
    pool: Rc<RefCell<PoolInner>>,
    hit: bool,
    reg_cost: f64,
}

impl PoolBuf {
    /// Did this lease reuse already-registered pool memory?
    pub fn was_hit(&self) -> bool {
        self.hit
    }

    /// Virtual registration time the owner should charge for this lease
    /// (0.0 on hits and under zero-cost policies).
    pub fn reg_cost(&self) -> f64 {
        self.reg_cost
    }
}

impl Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let mut p = self.pool.borrow_mut();
        p.stats.outstanding -= 1;
        p.stats.releases += 1;
        let cap = buf.capacity();
        let class = PoolInner::class_of(cap.max(1));
        // Only re-cache buffers whose capacity still matches their class
        // (they all do unless a caller grew the Vec) and that fit the cap.
        if PoolInner::class_bytes(class) == cap
            && p.cached_bytes + cap <= p.max_cached_bytes
            && p.classes.len() > class
        {
            p.cached_bytes += cap;
            p.classes[class].push(buf);
        } else {
            p.stats.unpins += 1;
            p.stats.pinned_bytes = p.stats.pinned_bytes.saturating_sub(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> RegParams {
        RegParams {
            bounce_threshold: 8 << 10,
            copy_rate: 4.5e9,
            pin_base: 40e-6,
            pin_per_page: 0.45e-6,
            page_size: 4096,
            nonpinned_bw_factor: 0.35,
        }
    }

    #[test]
    fn classes_round_up_to_powers_of_two() {
        assert_eq!(PoolInner::class_of(1), 0);
        assert_eq!(PoolInner::class_of(64), 0);
        assert_eq!(PoolInner::class_of(65), 1);
        assert_eq!(PoolInner::class_of(128), 1);
        assert_eq!(
            PoolInner::class_bytes(PoolInner::class_of(100_000)),
            1 << 17
        );
    }

    #[test]
    fn second_take_of_same_class_hits_and_is_free() {
        let pool = BufferPool::new(RegistrationPolicy::OnDemand, reg());
        let first = pool.take(4096);
        assert!(!first.was_hit());
        assert!(first.reg_cost() > 0.0);
        drop(first);
        let second = pool.take(3000); // same 4 KiB class
        assert!(second.was_hit());
        assert_eq!(second.reg_cost(), 0.0);
        assert_eq!(second.len(), 3000);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn buffers_come_back_zeroed() {
        let pool = BufferPool::new(RegistrationPolicy::Unregistered, reg());
        {
            let mut b = pool.take(256);
            b.iter_mut().for_each(|x| *x = 0xAB);
        }
        let b = pool.take(256);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn ondemand_miss_charges_pin_cost_of_the_class() {
        let r = reg();
        let pool = BufferPool::new(RegistrationPolicy::OnDemand, r.clone());
        let b = pool.take(100_000); // 128 KiB class
        assert!((b.reg_cost() - r.pin_cost(1 << 17)).abs() < 1e-15);
    }

    #[test]
    fn prepinned_budget_makes_misses_free_until_exhausted() {
        let r = reg();
        let pool = BufferPool::new(RegistrationPolicy::Prepinned, r.clone());
        let upfront = pool.prepin(1 << 20);
        assert!((upfront - r.pin_cost(1 << 20)).abs() < 1e-15);
        let a = pool.take(1 << 19);
        assert_eq!(a.reg_cost(), 0.0);
        let b = pool.take(1 << 19);
        assert_eq!(b.reg_cost(), 0.0);
        // Budget exhausted: the next distinct lease pins on demand.
        let c = pool.take(1 << 19);
        assert!(c.reg_cost() > 0.0);
    }

    #[test]
    fn cache_cap_unpins_excess_buffers() {
        let pool = BufferPool::new(RegistrationPolicy::Unregistered, reg());
        pool.set_max_cached_bytes(4096);
        drop(pool.take(4096));
        drop(pool.take(8192)); // cannot be cached on top of the 4 KiB one
        let s = pool.stats();
        assert_eq!(s.unpins, 1);
        assert!(s.pinned_bytes <= 4096);
    }

    #[test]
    fn high_water_tracks_concurrent_leases() {
        let pool = BufferPool::new(RegistrationPolicy::Unregistered, reg());
        let a = pool.take(1024);
        let b = pool.take(1024);
        drop(a);
        drop(b);
        // Two concurrent leases forced two distinct 1 KiB-class buffers.
        assert_eq!(pool.stats().high_water_bytes, 2048);
        // Steady state afterwards: both takes hit.
        let _c = pool.take(1024);
        let _d = pool.take(1024);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn hit_rate_converges_on_reuse() {
        let pool = BufferPool::new(RegistrationPolicy::OnDemand, reg());
        for _ in 0..100 {
            drop(pool.take(4096));
        }
        assert!(pool.stats().hit_rate() > 0.9);
    }
}
