//! Conflict tree: O(N·log N) overlap detection for IOV descriptors.
//!
//! Section VI-B of the paper: the *batched* and *datatype* IOV methods
//! require that no two segments of a generalized I/O vector overlap. A
//! naive pairwise scan is O(N²), and NWChem routinely produces IOVs with
//! tens to hundreds of thousands of segments. The paper's solution is a
//! self-balancing (AVL) binary tree of non-overlapping address ranges with
//! **merged check-and-insert**: each range is checked for conflicts during
//! its own insertion descent; if a conflict is found the insertion is
//! abandoned and the caller falls back to the *conservative* transfer
//! method.
//!
//! Unlike an interval tree, this structure never stores overlapping
//! ranges — that is precisely the property being verified — which keeps
//! both the invariant and the search trivial: for any node, the entire left
//! subtree lies strictly below `lo` and the right subtree strictly above
//! `hi`.
//!
//! Ranges here are half-open byte intervals `[lo, hi)`.

/// A conflict was found: the probed range overlaps an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The existing range that overlaps.
    pub existing: (usize, usize),
    /// The range being inserted.
    pub new: (usize, usize),
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "range [{}, {}) overlaps existing [{}, {})",
            self.new.0, self.new.1, self.existing.0, self.existing.1
        )
    }
}

impl std::error::Error for Conflict {}

struct Node {
    lo: usize,
    hi: usize,
    height: u32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(lo: usize, hi: usize) -> Box<Node> {
        Box::new(Node {
            lo,
            hi,
            height: 1,
            left: None,
            right: None,
        })
    }
}

fn height(n: &Option<Box<Node>>) -> u32 {
    n.as_ref().map_or(0, |n| n.height)
}

fn update(n: &mut Box<Node>) {
    n.height = 1 + height(&n.left).max(height(&n.right));
}

fn balance_factor(n: &Node) -> i64 {
    height(&n.left) as i64 - height(&n.right) as i64
}

fn rotate_right(mut n: Box<Node>) -> Box<Node> {
    let mut l = n.left.take().expect("rotate_right without left child");
    n.left = l.right.take();
    update(&mut n);
    l.right = Some(n);
    update(&mut l);
    l
}

fn rotate_left(mut n: Box<Node>) -> Box<Node> {
    let mut r = n.right.take().expect("rotate_left without right child");
    n.right = r.left.take();
    update(&mut n);
    r.left = Some(n);
    update(&mut r);
    r
}

fn rebalance(mut n: Box<Node>) -> Box<Node> {
    update(&mut n);
    let bf = balance_factor(&n);
    if bf > 1 {
        if balance_factor(n.left.as_ref().unwrap()) < 0 {
            n.left = Some(rotate_left(n.left.take().unwrap()));
        }
        rotate_right(n)
    } else if bf < -1 {
        if balance_factor(n.right.as_ref().unwrap()) > 0 {
            n.right = Some(rotate_right(n.right.take().unwrap()));
        }
        rotate_left(n)
    } else {
        n
    }
}

#[allow(clippy::type_complexity)]
fn insert(
    node: Option<Box<Node>>,
    lo: usize,
    hi: usize,
) -> Result<Box<Node>, (Conflict, Option<Box<Node>>)> {
    match node {
        None => Ok(Node::new(lo, hi)),
        Some(mut n) => {
            // Half-open intervals intersect iff lo < n.hi && n.lo < hi.
            if lo < n.hi && n.lo < hi {
                let c = Conflict {
                    existing: (n.lo, n.hi),
                    new: (lo, hi),
                };
                return Err((c, Some(n)));
            }
            if hi <= n.lo {
                match insert(n.left.take(), lo, hi) {
                    Ok(l) => n.left = Some(l),
                    Err((c, l)) => {
                        n.left = l;
                        return Err((c, Some(n)));
                    }
                }
            } else {
                debug_assert!(lo >= n.hi);
                match insert(n.right.take(), lo, hi) {
                    Ok(r) => n.right = Some(r),
                    Err((c, r)) => {
                        n.right = r;
                        return Err((c, Some(n)));
                    }
                }
            }
            Ok(rebalance(n))
        }
    }
}

/// AVL tree of pairwise-disjoint half-open ranges with merged
/// check-and-insert.
///
/// ```
/// use ctree::ConflictTree;
///
/// let mut t = ConflictTree::new();
/// t.try_insert(0, 16).unwrap();
/// t.try_insert(32, 48).unwrap();
/// // overlap detected during the insertion descent; tree unchanged
/// let conflict = t.try_insert(8, 40).unwrap_err();
/// assert_eq!(conflict.new, (8, 40));
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Default)]
pub struct ConflictTree {
    root: Option<Box<Node>>,
    len: usize,
}

impl ConflictTree {
    /// Empty tree.
    pub fn new() -> ConflictTree {
        ConflictTree::default()
    }

    /// Number of stored ranges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No ranges stored?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 for empty); exposed for balance tests and benches.
    pub fn height(&self) -> u32 {
        height(&self.root)
    }

    /// Checks `[lo, hi)` against all stored ranges and inserts it when
    /// disjoint. On conflict the tree is unchanged and the overlapping
    /// range is reported. Zero-length ranges are accepted and ignored.
    pub fn try_insert(&mut self, lo: usize, hi: usize) -> Result<(), Conflict> {
        assert!(lo <= hi, "inverted range [{lo}, {hi})");
        if lo == hi {
            return Ok(());
        }
        match insert(self.root.take(), lo, hi) {
            Ok(root) => {
                self.root = Some(root);
                self.len += 1;
                Ok(())
            }
            Err((c, root)) => {
                self.root = root;
                Err(c)
            }
        }
    }

    /// Pure overlap query (no insertion).
    pub fn overlaps(&self, lo: usize, hi: usize) -> Option<(usize, usize)> {
        if lo >= hi {
            return None;
        }
        let mut cur = &self.root;
        while let Some(n) = cur {
            if lo < n.hi && n.lo < hi {
                return Some((n.lo, n.hi));
            }
            cur = if hi <= n.lo { &n.left } else { &n.right };
        }
        None
    }

    /// In-order range dump (ascending, for tests).
    pub fn ranges(&self) -> Vec<(usize, usize)> {
        fn walk(n: &Option<Box<Node>>, out: &mut Vec<(usize, usize)>) {
            if let Some(n) = n {
                walk(&n.left, out);
                out.push((n.lo, n.hi));
                walk(&n.right, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, &mut out);
        out
    }

    /// Verifies the AVL + ordering invariants (test support).
    pub fn check_invariants(&self) -> bool {
        fn check(n: &Option<Box<Node>>, min: usize, max: usize) -> Option<u32> {
            match n {
                None => Some(0),
                Some(n) => {
                    if n.lo < min || n.hi > max || n.lo >= n.hi {
                        return None;
                    }
                    let hl = check(&n.left, min, n.lo)?;
                    let hr = check(&n.right, n.hi, max)?;
                    if (hl as i64 - hr as i64).abs() > 1 || n.height != 1 + hl.max(hr) {
                        return None;
                    }
                    Some(n.height)
                }
            }
        }
        check(&self.root, 0, usize::MAX).is_some()
    }
}

/// Checks an IOV segment list `(offset, len)` for pairwise disjointness
/// using the conflict tree: `Ok(())` if disjoint, the first conflict
/// otherwise. O(N·log N).
///
/// ```
/// let strided: Vec<(usize, usize)> = (0..1024).map(|i| (i * 64, 16)).collect();
/// assert!(ctree::scan_segments(&strided).is_ok());
/// assert!(ctree::scan_segments(&[(0, 8), (4, 8)]).is_err());
/// ```
pub fn scan_segments(segs: &[(usize, usize)]) -> Result<(), Conflict> {
    let mut tree = ConflictTree::new();
    for &(off, len) in segs {
        tree.try_insert(off, off + len)?;
    }
    Ok(())
}

/// Sorts and fuses a segment list `(offset, len)` into the minimal set of
/// maximal ranges covering the same bytes: adjacent or overlapping
/// segments merge, zero-length segments vanish, output is ascending.
/// O(N·log N). The coalescing scheduler calls this only after
/// [`scan_segments`] proves the input disjoint — merging *overlapping*
/// writes or accumulates would change semantics — but the function itself
/// is total and the merged cover is byte-equal for any input.
pub fn merge_segments(segs: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut v: Vec<(usize, usize)> = segs
        .iter()
        .filter(|&&(_, len)| len > 0)
        .map(|&(off, len)| (off, off + len))
        .collect();
    v.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(v.len());
    for (lo, hi) in v {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out.into_iter().map(|(lo, hi)| (lo, hi - lo)).collect()
}

/// Reference O(N²) pairwise scan (tests, ablation benchmarks).
pub fn scan_segments_naive(segs: &[(usize, usize)]) -> Result<(), Conflict> {
    for (i, &(o1, l1)) in segs.iter().enumerate() {
        if l1 == 0 {
            continue;
        }
        for &(o2, l2) in &segs[..i] {
            if l2 == 0 {
                continue;
            }
            if o2 < o1 + l1 && o1 < o2 + l2 {
                return Err(Conflict {
                    existing: (o2, o2 + l2),
                    new: (o1, o1 + l1),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = ConflictTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.overlaps(0, 10), None);
        assert!(t.check_invariants());
    }

    #[test]
    fn disjoint_inserts_succeed() {
        let mut t = ConflictTree::new();
        for i in 0..100 {
            t.try_insert(i * 10, i * 10 + 5).unwrap();
        }
        assert_eq!(t.len(), 100);
        assert!(t.check_invariants());
    }

    #[test]
    fn adjacent_ranges_do_not_conflict() {
        let mut t = ConflictTree::new();
        t.try_insert(0, 10).unwrap();
        t.try_insert(10, 20).unwrap();
        t.try_insert(20, 30).unwrap();
        assert_eq!(t.ranges(), vec![(0, 10), (10, 20), (20, 30)]);
    }

    #[test]
    fn overlap_detected_and_tree_unchanged() {
        let mut t = ConflictTree::new();
        t.try_insert(0, 10).unwrap();
        t.try_insert(20, 30).unwrap();
        let c = t.try_insert(5, 25).unwrap_err();
        assert!(c.existing == (0, 10) || c.existing == (20, 30));
        assert_eq!(c.new, (5, 25));
        assert_eq!(t.len(), 2);
        assert!(t.check_invariants());
    }

    #[test]
    fn containment_both_directions_is_conflict() {
        let mut t = ConflictTree::new();
        t.try_insert(10, 20).unwrap();
        assert!(t.try_insert(12, 15).is_err()); // new inside existing
        assert!(t.try_insert(5, 25).is_err()); // new contains existing
        assert!(t.try_insert(10, 20).is_err()); // exact duplicate
    }

    #[test]
    fn zero_length_ranges_ignored() {
        let mut t = ConflictTree::new();
        t.try_insert(5, 5).unwrap();
        assert!(t.is_empty());
        t.try_insert(0, 10).unwrap();
        t.try_insert(5, 5).unwrap(); // zero length never conflicts
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn inverted_range_panics() {
        let _ = ConflictTree::new().try_insert(10, 5);
    }

    #[test]
    fn ascending_insert_stays_balanced() {
        let mut t = ConflictTree::new();
        let n = 1usize << 12;
        for i in 0..n {
            t.try_insert(i * 2, i * 2 + 1).unwrap();
        }
        assert!(t.check_invariants());
        // AVL height bound: 1.44·log2(n+2)
        let bound = (1.45 * ((n + 2) as f64).log2()).ceil() as u32;
        assert!(t.height() <= bound, "height {} > bound {bound}", t.height());
    }

    #[test]
    fn descending_insert_stays_balanced() {
        let mut t = ConflictTree::new();
        for i in (0..1000usize).rev() {
            t.try_insert(i * 2, i * 2 + 1).unwrap();
        }
        assert!(t.check_invariants());
        assert!(t.height() <= 15);
    }

    #[test]
    fn ranges_are_sorted_in_order() {
        let mut t = ConflictTree::new();
        for &x in &[50usize, 10, 90, 30, 70] {
            t.try_insert(x, x + 5).unwrap();
        }
        assert_eq!(
            t.ranges(),
            vec![(10, 15), (30, 35), (50, 55), (70, 75), (90, 95)]
        );
    }

    #[test]
    fn overlaps_query_pure() {
        let mut t = ConflictTree::new();
        t.try_insert(100, 200).unwrap();
        assert_eq!(t.overlaps(150, 160), Some((100, 200)));
        assert_eq!(t.overlaps(0, 100), None);
        assert_eq!(t.overlaps(200, 300), None);
        assert_eq!(t.overlaps(199, 201), Some((100, 200)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn scan_matches_naive_on_examples() {
        let disjoint = vec![(0usize, 8), (16, 8), (8, 8), (100, 1)];
        assert!(scan_segments(&disjoint).is_ok());
        assert!(scan_segments_naive(&disjoint).is_ok());
        let overlapping = vec![(0usize, 8), (16, 8), (4, 8)];
        assert!(scan_segments(&overlapping).is_err());
        assert!(scan_segments_naive(&overlapping).is_err());
    }

    #[test]
    fn merge_fuses_adjacent_and_overlapping() {
        // unsorted, with an adjacency (0..8 + 8..8), an overlap
        // (30..10 vs 35..10), and a zero-length segment
        let segs = vec![(8usize, 8usize), (0, 8), (35, 10), (30, 10), (100, 0)];
        assert_eq!(merge_segments(&segs), vec![(0, 16), (30, 15)]);
    }

    #[test]
    fn merge_empty_and_singleton() {
        assert!(merge_segments(&[]).is_empty());
        assert!(merge_segments(&[(5, 0)]).is_empty());
        assert_eq!(merge_segments(&[(7, 3)]), vec![(7, 3)]);
    }

    #[test]
    fn merge_strided_gap_preserved() {
        // stride 64, len 16: nothing adjacent, output == sorted input
        let segs: Vec<(usize, usize)> = (0..32).rev().map(|i| (i * 64, 16)).collect();
        let merged = merge_segments(&segs);
        assert_eq!(merged.len(), 32);
        assert_eq!(merged[0], (0, 16));
        assert_eq!(merged[31], (31 * 64, 16));
    }

    #[test]
    fn typical_strided_iov_is_clean() {
        // 1024 segments of 16 bytes with stride 64 — the Figure 4 shape.
        let segs: Vec<(usize, usize)> = (0..1024).map(|i| (i * 64, 16)).collect();
        assert!(scan_segments(&segs).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tree agrees with the naive O(N²) oracle on arbitrary
        /// segment lists.
        #[test]
        fn matches_naive_oracle(
            segs in proptest::collection::vec((0usize..500, 0usize..32), 0..200)
        ) {
            let tree = scan_segments(&segs);
            let naive = scan_segments_naive(&segs);
            prop_assert_eq!(tree.is_ok(), naive.is_ok());
        }

        /// Invariants hold after any sequence of insert attempts, and the
        /// stored set equals the greedily-accepted prefix set.
        #[test]
        fn invariants_maintained(
            segs in proptest::collection::vec((0usize..10_000, 1usize..64), 0..300)
        ) {
            let mut t = ConflictTree::new();
            let mut stored: Vec<(usize, usize)> = Vec::new();
            for &(off, len) in &segs {
                if t.try_insert(off, off + len).is_ok() {
                    stored.push((off, off + len));
                }
                prop_assert!(t.check_invariants());
            }
            stored.sort_unstable();
            prop_assert_eq!(t.ranges(), stored);
        }

        /// The merged segment list covers exactly the same bytes as a
        /// naive per-byte union, is itself conflict-free, and is minimal
        /// (no two output ranges touch or overlap).
        #[test]
        fn merge_matches_naive_coverage_oracle(
            segs in proptest::collection::vec((0usize..600, 0usize..48), 0..200)
        ) {
            let merged = merge_segments(&segs);
            // naive oracle: mark every covered byte
            let mut cover = vec![false; 700];
            for &(off, len) in &segs {
                for c in cover.iter_mut().skip(off).take(len) {
                    *c = true;
                }
            }
            let mut merged_cover = vec![false; 700];
            for &(off, len) in &merged {
                for (b, c) in merged_cover.iter_mut().enumerate().skip(off).take(len) {
                    prop_assert!(!*c, "byte {} covered twice", b);
                    *c = true;
                }
            }
            prop_assert_eq!(cover, merged_cover);
            // conflict-free by construction
            prop_assert!(scan_segments(&merged).is_ok());
            // minimal: consecutive output ranges separated by a real gap
            for w in merged.windows(2) {
                prop_assert!(w[0].0 + w[0].1 < w[1].0);
            }
        }

        /// The graph-driver access shape — many tiny word-aligned
        /// intervals scattered non-adjacently across a big space, with
        /// hot duplicates from revisited vertices — gets the same
        /// per-op accept/reject verdict as a linear-scan oracle, and
        /// the final stored set matches.
        #[test]
        fn irregular_tiny_intervals_match_linear_scan_oracle(
            words in proptest::collection::vec((0usize..512, 1usize..9), 1..400)
        ) {
            let mut t = ConflictTree::new();
            let mut oracle: Vec<(usize, usize)> = Vec::new();
            for &(word, len) in &words {
                let (lo, hi) = (word * 8, word * 8 + len);
                let oracle_ok = oracle.iter().all(|&(slo, shi)| hi <= slo || shi <= lo);
                match t.try_insert(lo, hi) {
                    Ok(()) => prop_assert!(oracle_ok,
                        "tree accepted [{},{}) the linear scan rejects", lo, hi),
                    Err(c) => {
                        prop_assert!(!oracle_ok,
                            "tree rejected [{},{}) the linear scan accepts", lo, hi);
                        let (elo, ehi) = c.existing;
                        prop_assert!(lo < ehi && elo < hi);
                    }
                }
                if oracle_ok {
                    oracle.push((lo, hi));
                }
            }
            oracle.sort_unstable();
            prop_assert_eq!(t.ranges(), oracle);
            prop_assert!(t.check_invariants());
        }

        /// A reported conflict really overlaps something stored, and a
        /// successful insert really is disjoint from all stored ranges.
        #[test]
        fn conflict_reports_are_truthful(
            segs in proptest::collection::vec((0usize..300, 1usize..40), 1..150)
        ) {
            let mut t = ConflictTree::new();
            let mut stored: Vec<(usize, usize)> = Vec::new();
            for &(off, len) in &segs {
                let (lo, hi) = (off, off + len);
                match t.try_insert(lo, hi) {
                    Ok(()) => {
                        for &(slo, shi) in &stored {
                            prop_assert!(hi <= slo || shi <= lo,
                                "accepted [{},{}) overlapping [{},{})", lo, hi, slo, shi);
                        }
                        stored.push((lo, hi));
                    }
                    Err(c) => {
                        prop_assert!(c.new == (lo, hi));
                        prop_assert!(stored.contains(&c.existing));
                        let (elo, ehi) = c.existing;
                        prop_assert!(lo < ehi && elo < hi);
                    }
                }
            }
        }
    }
}
