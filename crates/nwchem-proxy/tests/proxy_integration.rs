//! The proxy's correctness oracle: bit-exact energies across backends,
//! process counts, and tilings.

use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use mpisim::{Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, run_ccsd_overlap, run_triples, CcsdConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        charge_time: false,
        ..Default::default()
    }
}

fn ccsd_energy_mpi(n: usize, cfg: CcsdConfig) -> (f64, usize) {
    let res = Runtime::run_with(n, quiet(), move |p| {
        let rt = ArmciMpi::new(p);
        run_ccsd(p, &rt, &cfg)
    });
    let total_tasks = res.iter().map(|r| r.tasks_done).sum();
    (res[0].energy, total_tasks)
}

fn ccsd_energy_native(n: usize, cfg: CcsdConfig) -> (f64, usize) {
    let res = Runtime::run_with(n, quiet(), move |p| {
        let rt = ArmciNative::new(p);
        run_ccsd(p, &rt, &cfg)
    });
    let total_tasks = res.iter().map(|r| r.tasks_done).sum();
    (res[0].energy, total_tasks)
}

#[test]
fn ccsd_energy_identical_across_backends() {
    let cfg = CcsdConfig::tiny();
    let (e_mpi, t_mpi) = ccsd_energy_mpi(3, cfg);
    let (e_nat, t_nat) = ccsd_energy_native(3, cfg);
    assert!(e_mpi != 0.0, "energy unexpectedly zero");
    assert_eq!(e_mpi, e_nat, "backend energies differ");
    assert_eq!(t_mpi, cfg.ccsd_tasks() * cfg.iterations);
    assert_eq!(t_nat, cfg.ccsd_tasks() * cfg.iterations);
}

#[test]
fn ccsd_energy_independent_of_process_count() {
    let cfg = CcsdConfig::tiny();
    let (e1, _) = ccsd_energy_mpi(1, cfg);
    let (e2, _) = ccsd_energy_mpi(2, cfg);
    let (e5, _) = ccsd_energy_mpi(5, cfg);
    assert_eq!(e1, e2);
    assert_eq!(e2, e5);
}

#[test]
fn ccsd_energy_independent_of_tiling() {
    let a = CcsdConfig {
        no: 4,
        nv: 8,
        tile_o: 2,
        tile_v: 4,
        iterations: 1,
    };
    let b = CcsdConfig {
        no: 4,
        nv: 8,
        tile_o: 4,
        tile_v: 2,
        iterations: 1,
    };
    let c = CcsdConfig {
        no: 4,
        nv: 8,
        tile_o: 1,
        tile_v: 8,
        iterations: 1,
    };
    let (ea, _) = ccsd_energy_mpi(3, a);
    let (eb, _) = ccsd_energy_mpi(3, b);
    let (ec, _) = ccsd_energy_mpi(3, c);
    assert_eq!(ea, eb);
    assert_eq!(eb, ec);
}

#[test]
fn triples_energy_identical_across_backends_and_ranks() {
    let cfg = CcsdConfig::tiny();
    let e_m2 = Runtime::run_with(2, quiet(), move |p| {
        let rt = ArmciMpi::new(p);
        run_triples(p, &rt, &cfg).energy
    })[0];
    let e_m4 = Runtime::run_with(4, quiet(), move |p| {
        let rt = ArmciMpi::new(p);
        run_triples(p, &rt, &cfg).energy
    })[0];
    let e_n3 = Runtime::run_with(3, quiet(), move |p| {
        let rt = ArmciNative::new(p);
        run_triples(p, &rt, &cfg).energy
    })[0];
    assert!(e_m2 > 0.0);
    assert_eq!(e_m2, e_m4);
    assert_eq!(e_m2, e_n3);
}

#[test]
fn dynamic_load_balancing_splits_tasks() {
    // With several ranks, no rank should execute all tasks (NXTVAL works).
    let cfg = CcsdConfig {
        no: 4,
        nv: 8,
        tile_o: 1,
        tile_v: 2,
        iterations: 1,
    };
    let res = Runtime::run_with(4, quiet(), move |p| {
        let rt = ArmciMpi::new(p);
        run_ccsd(p, &rt, &cfg)
    });
    let total: usize = res.iter().map(|r| r.tasks_done).sum();
    assert_eq!(total, cfg.ccsd_tasks());
    let max = res.iter().map(|r| r.tasks_done).max().unwrap();
    assert!(max < total, "one rank hogged all {total} tasks");
}

#[test]
fn virtual_time_scales_down_with_ranks() {
    // More processes → less virtual time per rank (parallel speedup in
    // the simulated clock domain).
    let cfg = CcsdConfig {
        no: 4,
        nv: 16,
        tile_o: 2,
        tile_v: 4,
        iterations: 1,
    };
    let t1 = Runtime::run(1, move |p| {
        let rt = ArmciMpi::new(p);
        run_ccsd(p, &rt, &cfg).elapsed
    })[0];
    let t4: f64 = Runtime::run(4, move |p| {
        let rt = ArmciMpi::new(p);
        run_ccsd(p, &rt, &cfg).elapsed
    })
    .iter()
    .fold(0.0f64, |m, &t| m.max(t));
    assert!(
        t4 < 0.75 * t1,
        "no speedup: 1 rank {t1} vs 4 ranks {t4} virtual seconds"
    );
}

#[test]
fn overlap_schedule_reproduces_blocking_energy() {
    // The prefetch/deferred-accumulate pipeline keeps arithmetic order
    // identical to the blocking loop, so the energy must be bit-exact —
    // under both the MPI-2 epoch discipline and epochless mode.
    let cfg = CcsdConfig::tiny();
    for epochless in [false, true] {
        let mk = move || armci_mpi::Config {
            epochless,
            ..Default::default()
        };
        let blocking = Runtime::run_with(3, quiet(), move |p| {
            let rt = ArmciMpi::with_config(p, mk());
            run_ccsd(p, &rt, &cfg)
        });
        let overlap = Runtime::run_with(3, quiet(), move |p| {
            let rt = ArmciMpi::with_config(p, mk());
            run_ccsd_overlap(p, &rt, &cfg)
        });
        assert!(blocking[0].energy != 0.0);
        assert_eq!(
            blocking[0].energy, overlap[0].energy,
            "overlap energy diverged (epochless={epochless})"
        );
        let t_b: usize = blocking.iter().map(|r| r.tasks_done).sum();
        let t_o: usize = overlap.iter().map(|r| r.tasks_done).sum();
        assert_eq!(t_b, t_o);
    }
}

#[test]
fn overlap_schedule_saves_virtual_time_epochless() {
    // With real costs charged, the overlapped schedule should not be
    // slower than the blocking one (get→DGEMM→acc overlap hides
    // communication behind compute in the virtual clock).
    let cfg = CcsdConfig {
        no: 4,
        nv: 16,
        tile_o: 2,
        tile_v: 4,
        iterations: 1,
    };
    let mk = || armci_mpi::Config {
        epochless: true,
        // Overlap is a wire-path property: on a single node the shm
        // bypass completes every transfer eagerly and there is nothing
        // for the schedule to hide.
        shm: false,
        ..Default::default()
    };
    let t_block: f64 = Runtime::run(2, move |p| {
        let rt = ArmciMpi::with_config(p, mk());
        run_ccsd(p, &rt, &cfg).elapsed
    })
    .iter()
    .fold(0.0f64, |m, &t| m.max(t));
    let t_overlap: f64 = Runtime::run(2, move |p| {
        let rt = ArmciMpi::with_config(p, mk());
        run_ccsd_overlap(p, &rt, &cfg).elapsed
    })
    .iter()
    .fold(0.0f64, |m, &t| m.max(t));
    assert!(
        t_overlap <= t_block * 1.05,
        "overlap slower than blocking: {t_overlap} vs {t_block} virtual seconds"
    );
}

#[test]
fn overlap_schedule_runs_on_native_backend() {
    // Eager-completion backends run the same code path (handles complete
    // at issue); the energy is still bit-exact.
    let cfg = CcsdConfig::tiny();
    let blocking = Runtime::run_with(3, quiet(), move |p| {
        let rt = ArmciNative::new(p);
        run_ccsd(p, &rt, &cfg).energy
    })[0];
    let overlap = Runtime::run_with(3, quiet(), move |p| {
        let rt = ArmciNative::new(p);
        run_ccsd_overlap(p, &rt, &cfg).energy
    })[0];
    assert_eq!(blocking, overlap);
}
