//! **NWChem proxy** — a CCSD(T)-style blocked tensor-contraction driver
//! standing in for the NWChem computational chemistry suite (§II-A, §VII-C).
//!
//! The paper's application study runs coupled-cluster singles-and-doubles
//! with perturbative triples, CCSD(T), on a water pentamer (w5):
//! `no = 20` occupied and `nv = 435` virtual orbitals, `O(no³nv⁴)` flops
//! over `O(no²nv²)` amplitudes. At the runtime level the calculation is a
//! stream of **tasks** claimed from a shared NXTVAL counter
//! (`GA read_inc`), each performing *get tile → DGEMM → accumulate tile*
//! against Global Arrays — precisely the traffic ARMCI must carry.
//!
//! This crate reproduces that runtime behaviour:
//!
//! * [`ccsd`] — an executable small-scale CCSD-like iteration (the
//!   particle-particle ladder contraction, the dominant `O(no²nv⁴)` term)
//!   and a (T)-like triples energy sweep, both running on real
//!   [`ga::GlobalArray`]s over either ARMCI backend. Synthetic amplitudes
//!   are dyadic rationals so energies are **bit-exact** across backends,
//!   process counts, and tilings — the correctness oracle.
//! * [`profile`] — analytic per-task communication/compute profiles at
//!   full w5 scale, consumed by the `scalesim` discrete-event simulator to
//!   regenerate Figure 6 at 744–12,288 cores.

pub mod ccsd;
pub mod profile;
pub mod tensors;

pub use ccsd::{
    run_ccsd, run_ccsd_overlap, run_ccsd_pipelined, run_ccsd_skewed, run_triples, CcsdConfig,
    CcsdResult, CCSD_CHUNK,
};
pub use profile::{nxtval_service, task_profile, Backend, ProxyPhase, TaskProfile};
