//! Executable CCSD / (T) proxy over Global Arrays.
//!
//! The CCSD phase computes the particle–particle ladder contraction
//!
//! ```text
//! R[i,j,a,b] = Σ_{c,d} V[a,b,c,d] · T[i,j,c,d]
//! ```
//!
//! which dominates a CCSD iteration (`O(no² nv⁴)` flops) and has the
//! canonical NWChem runtime signature: claim a tile pair from the NXTVAL
//! counter, *get* the integral and amplitude tiles, DGEMM locally,
//! *accumulate* the result tile. The (T) phase sweeps the same tile space
//! with a higher flops-per-byte ratio and no accumulates (energy only),
//! mirroring the perturbative-triples character.

use crate::tensors::{fill_patch, t2_value, v2_value};
use armci::Armci;
use ga::{GaType, GlobalArray};
use mpisim::Proc;

/// Proxy problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct CcsdConfig {
    /// Occupied orbitals (paper w5: 20).
    pub no: usize,
    /// Virtual orbitals (paper w5: 435).
    pub nv: usize,
    /// Occupied tile size (must divide `no`).
    pub tile_o: usize,
    /// Virtual tile size (must divide `nv`).
    pub tile_v: usize,
    /// CCSD iterations to run.
    pub iterations: usize,
}

impl CcsdConfig {
    /// A laptop-sized configuration for tests and examples.
    pub fn tiny() -> CcsdConfig {
        CcsdConfig {
            no: 4,
            nv: 8,
            tile_o: 2,
            tile_v: 4,
            iterations: 1,
        }
    }

    /// The paper's w5 problem (used analytically by `scalesim`; far too
    /// large to materialise in tests).
    pub fn w5() -> CcsdConfig {
        CcsdConfig {
            no: 20,
            nv: 435,
            tile_o: 10,
            tile_v: 29,
            iterations: 10,
        }
    }

    fn check(&self) {
        assert!(self.no.is_multiple_of(self.tile_o), "tile_o must divide no");
        assert!(self.nv.is_multiple_of(self.tile_v), "tile_v must divide nv");
    }

    /// Occupied tiles per dimension.
    pub fn ot(&self) -> usize {
        self.no / self.tile_o
    }

    /// Virtual tiles per dimension.
    pub fn vt(&self) -> usize {
        self.nv / self.tile_v
    }

    /// CCSD ladder tasks per iteration: one per (ij-tile, ab-tile) pair.
    pub fn ccsd_tasks(&self) -> usize {
        self.ot() * self.ot() * self.vt() * self.vt()
    }

    /// Flops of one CCSD ladder task (all `cd` tiles contracted).
    pub fn ccsd_task_flops(&self) -> f64 {
        let m = (self.tile_o * self.tile_o) as f64;
        let n = (self.tile_v * self.tile_v) as f64;
        let k = (self.nv * self.nv) as f64;
        2.0 * m * n * k
    }

    /// Bytes fetched by one CCSD ladder task.
    pub fn ccsd_task_get_bytes(&self) -> usize {
        let vtile = self.tile_v * self.tile_v;
        // per cd-tile: V tile (tv² × tv²) + T tile (to² × tv²)
        let per_cd = (vtile * vtile + self.tile_o * self.tile_o * vtile) * 8;
        per_cd * self.vt() * self.vt()
    }

    /// Bytes accumulated by one CCSD ladder task.
    pub fn ccsd_task_acc_bytes(&self) -> usize {
        self.tile_o * self.tile_o * self.tile_v * self.tile_v * 8
    }
}

/// Result of a proxy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcsdResult {
    /// Synthetic correlation energy (bit-exact across backends/tilings).
    pub energy: f64,
    /// Virtual seconds elapsed on this rank.
    pub elapsed: f64,
    /// Tasks this rank executed.
    pub tasks_done: usize,
}

/// Runs `cfg.iterations` CCSD ladder iterations and returns the final
/// synthetic energy `R · T / (1 + |T|²)`. Collective over the world group.
pub fn run_ccsd<A: Armci + ?Sized>(p: &Proc, rt: &A, cfg: &CcsdConfig) -> CcsdResult {
    cfg.check();
    let t0 = p.clock().now();
    let flop_rate = p.config().platform.compute.flops_per_core;

    let tdims = [cfg.no, cfg.no, cfg.nv, cfg.nv];
    let vdims = [cfg.nv, cfg.nv, cfg.nv, cfg.nv];
    let t2 = GlobalArray::create(rt, "t2", GaType::F64, &tdims).expect("create t2");
    let v2 = GlobalArray::create(rt, "v2", GaType::F64, &vdims).expect("create v2");
    let r2 = GlobalArray::create(rt, "r2", GaType::F64, &tdims).expect("create r2");
    let counter = GlobalArray::create(rt, "nxtval", GaType::I64, &[1]).expect("create counter");

    // Initialise amplitudes and integrals: every rank fills its own block.
    init_4d(&t2, t2_value);
    init_4d(&v2, v2_value);
    t2.sync();

    let (ot, vt, to, tv) = (cfg.ot(), cfg.vt(), cfg.tile_o, cfg.tile_v);
    let ntasks = cfg.ccsd_tasks();
    let mut tasks_done = 0usize;
    let mut energy = 0.0;

    for _iter in 0..cfg.iterations {
        r2.zero().expect("zero r2");
        if rt.rank() == 0 {
            counter
                .put_patch_i64(&[0], &[1], &[0])
                .expect("reset counter");
        }
        counter.sync();

        // Dynamic load balancing: claim tile-pair tasks from NXTVAL.
        loop {
            let task = counter.read_inc(&[0], 1).expect("nxtval") as usize;
            if task >= ntasks {
                break;
            }
            tasks_done += 1;
            // decode (ti, tj, ta, tb)
            let ti = task / (ot * vt * vt);
            let tj = (task / (vt * vt)) % ot;
            let ta = (task / vt) % vt;
            let tb = task % vt;
            let (ilo, ihi) = (ti * to, (ti + 1) * to);
            let (jlo, jhi) = (tj * to, (tj + 1) * to);
            let (alo, ahi) = (ta * tv, (ta + 1) * tv);
            let (blo, bhi) = (tb * tv, (tb + 1) * tv);

            let m = to * to; // ij pairs in tile
            let n = tv * tv; // ab pairs in tile
            let mut rblock = vec![0.0f64; m * n];

            for tc in 0..vt {
                for td in 0..vt {
                    let (clo, chi) = (tc * tv, (tc + 1) * tv);
                    let (dlo, dhi) = (td * tv, (td + 1) * tv);
                    // gets: V[a,b,c,d] and T[i,j,c,d]
                    let vblk = v2
                        .get_patch(&[alo, blo, clo, dlo], &[ahi, bhi, chi, dhi])
                        .expect("get V");
                    let tblk = t2
                        .get_patch(&[ilo, jlo, clo, dlo], &[ihi, jhi, chi, dhi])
                        .expect("get T");
                    // local DGEMM: R[ij, ab] += Σ_cd V[ab, cd] · T[ij, cd]
                    let k = tv * tv;
                    for ij in 0..m {
                        for ab in 0..n {
                            let mut acc = 0.0;
                            for cd in 0..k {
                                acc += vblk[ab * k + cd] * tblk[ij * k + cd];
                            }
                            rblock[ij * n + ab] += acc;
                        }
                    }
                    p.compute(2.0 * (m * n * k) as f64 / flop_rate);
                }
            }
            // accumulate the result tile
            r2.acc_patch(1.0, &[ilo, jlo, alo, blo], &[ihi, jhi, ahi, bhi], &rblock)
                .expect("acc R");
        }
        r2.sync();
        // synthetic energy from global reductions
        let rt_dot = r2.dot(&t2).expect("dot");
        let tt = t2.dot(&t2).expect("dot");
        energy = rt_dot / (1.0 + tt);
    }

    t2.sync();
    counter.destroy().expect("destroy counter");
    r2.destroy().expect("destroy r2");
    v2.destroy().expect("destroy v2");
    t2.destroy().expect("destroy t2");

    CcsdResult {
        energy,
        elapsed: p.clock().now() - t0,
        tasks_done,
    }
}

/// Runs the same CCSD ladder as [`run_ccsd`] with a deterministic
/// imbalance knob, for exercising the wait-state attributor: tasks are
/// assigned **statically** (cyclic, `task % nprocs == rank` — no NXTVAL
/// race, so the schedule is identical on every run) and each rank's
/// compute charge is scaled by `1 + skew · rank / (nprocs − 1)`. With
/// `skew > 0` the high ranks run slower and every collective waits on
/// them; the stalls surface as `progress` waits whose critical path runs
/// through the skewed ranks. The arithmetic is unchanged — energy is
/// bit-exact equal to [`run_ccsd`] at `skew = 0` tilings aside — only
/// the virtual-time profile moves.
pub fn run_ccsd_skewed<A: Armci + ?Sized>(
    p: &Proc,
    rt: &A,
    cfg: &CcsdConfig,
    skew: f64,
) -> CcsdResult {
    cfg.check();
    let t0 = p.clock().now();
    let nprocs = rt.nprocs();
    let me = rt.rank();
    let slow = 1.0 + skew * me as f64 / (nprocs - 1).max(1) as f64;
    let flop_rate = p.config().platform.compute.flops_per_core;

    let tdims = [cfg.no, cfg.no, cfg.nv, cfg.nv];
    let vdims = [cfg.nv, cfg.nv, cfg.nv, cfg.nv];
    let t2 = GlobalArray::create(rt, "t2", GaType::F64, &tdims).expect("create t2");
    let v2 = GlobalArray::create(rt, "v2", GaType::F64, &vdims).expect("create v2");
    let r2 = GlobalArray::create(rt, "r2", GaType::F64, &tdims).expect("create r2");

    init_4d(&t2, t2_value);
    init_4d(&v2, v2_value);
    t2.sync();

    let (ot, vt, to, tv) = (cfg.ot(), cfg.vt(), cfg.tile_o, cfg.tile_v);
    let ntasks = cfg.ccsd_tasks();
    let mut tasks_done = 0usize;
    let mut energy = 0.0;

    for _iter in 0..cfg.iterations {
        r2.zero().expect("zero r2");
        r2.sync();

        for task in (me..ntasks).step_by(nprocs.max(1)) {
            tasks_done += 1;
            let ti = task / (ot * vt * vt);
            let tj = (task / (vt * vt)) % ot;
            let ta = (task / vt) % vt;
            let tb = task % vt;
            let (ilo, ihi) = (ti * to, (ti + 1) * to);
            let (jlo, jhi) = (tj * to, (tj + 1) * to);
            let (alo, ahi) = (ta * tv, (ta + 1) * tv);
            let (blo, bhi) = (tb * tv, (tb + 1) * tv);

            let m = to * to;
            let n = tv * tv;
            let mut rblock = vec![0.0f64; m * n];

            for tc in 0..vt {
                for td in 0..vt {
                    let (clo, chi) = (tc * tv, (tc + 1) * tv);
                    let (dlo, dhi) = (td * tv, (td + 1) * tv);
                    let vblk = v2
                        .get_patch(&[alo, blo, clo, dlo], &[ahi, bhi, chi, dhi])
                        .expect("get V");
                    let tblk = t2
                        .get_patch(&[ilo, jlo, clo, dlo], &[ihi, jhi, chi, dhi])
                        .expect("get T");
                    let k = tv * tv;
                    for ij in 0..m {
                        for ab in 0..n {
                            let mut acc = 0.0;
                            for cd in 0..k {
                                acc += vblk[ab * k + cd] * tblk[ij * k + cd];
                            }
                            rblock[ij * n + ab] += acc;
                        }
                    }
                    p.compute(slow * 2.0 * (m * n * k) as f64 / flop_rate);
                }
            }
            r2.acc_patch(1.0, &[ilo, jlo, alo, blo], &[ihi, jhi, ahi, bhi], &rblock)
                .expect("acc R");
        }
        r2.sync();
        let rt_dot = r2.dot(&t2).expect("dot");
        let tt = t2.dot(&t2).expect("dot");
        energy = rt_dot / (1.0 + tt);
    }

    t2.sync();
    r2.destroy().expect("destroy r2");
    v2.destroy().expect("destroy v2");
    t2.destroy().expect("destroy t2");

    CcsdResult {
        energy,
        elapsed: p.clock().now() - t0,
        tasks_done,
    }
}

/// Runs the same CCSD ladder as [`run_ccsd`] but with the NWChem-style
/// overlap schedule: the V/T tiles of the *next* `cd` pair are prefetched
/// with nonblocking gets while the current pair's DGEMM runs
/// (double-buffering), and each task's result accumulate is issued
/// nonblocking and retired while the next task's first tiles are fetched.
/// The arithmetic — tile order, contraction order, reductions — is
/// identical to the blocking path, so the returned energy is bit-exact
/// equal; only the virtual-time schedule differs.
pub fn run_ccsd_overlap<A: Armci + ?Sized>(p: &Proc, rt: &A, cfg: &CcsdConfig) -> CcsdResult {
    cfg.check();
    let t0 = p.clock().now();
    let flop_rate = p.config().platform.compute.flops_per_core;

    let tdims = [cfg.no, cfg.no, cfg.nv, cfg.nv];
    let vdims = [cfg.nv, cfg.nv, cfg.nv, cfg.nv];
    let t2 = GlobalArray::create(rt, "t2", GaType::F64, &tdims).expect("create t2");
    let v2 = GlobalArray::create(rt, "v2", GaType::F64, &vdims).expect("create v2");
    let r2 = GlobalArray::create(rt, "r2", GaType::F64, &tdims).expect("create r2");
    let counter = GlobalArray::create(rt, "nxtval", GaType::I64, &[1]).expect("create counter");

    init_4d(&t2, t2_value);
    init_4d(&v2, v2_value);
    t2.sync();

    let (ot, vt, to, tv) = (cfg.ot(), cfg.vt(), cfg.tile_o, cfg.tile_v);
    let ntasks = cfg.ccsd_tasks();
    let mut tasks_done = 0usize;
    let mut energy = 0.0;

    let m = to * to;
    let n = tv * tv;
    let k = tv * tv;
    // Double buffers for the V and T tiles of two consecutive cd pairs.
    let mut vcur = vec![0.0f64; n * k];
    let mut tcur = vec![0.0f64; m * k];
    let mut vnext = vec![0.0f64; n * k];
    let mut tnext = vec![0.0f64; m * k];

    for _iter in 0..cfg.iterations {
        r2.zero().expect("zero r2");
        if rt.rank() == 0 {
            counter
                .put_patch_i64(&[0], &[1], &[0])
                .expect("reset counter");
        }
        counter.sync();

        // Pending result accumulate from the previous task; retired while
        // the next task's first tiles are in flight.
        let mut pending_acc: Option<ga::GaNbHandle> = None;

        loop {
            let task = counter.read_inc(&[0], 1).expect("nxtval") as usize;
            if task >= ntasks {
                break;
            }
            tasks_done += 1;
            let ti = task / (ot * vt * vt);
            let tj = (task / (vt * vt)) % ot;
            let ta = (task / vt) % vt;
            let tb = task % vt;
            let (ilo, ihi) = (ti * to, (ti + 1) * to);
            let (jlo, jhi) = (tj * to, (tj + 1) * to);
            let (alo, ahi) = (ta * tv, (ta + 1) * tv);
            let (blo, bhi) = (tb * tv, (tb + 1) * tv);

            let mut rblock = vec![0.0f64; m * n];
            let bounds = |tc: usize, td: usize| {
                let (clo, chi) = (tc * tv, (tc + 1) * tv);
                let (dlo, dhi) = (td * tv, (td + 1) * tv);
                (
                    [alo, blo, clo, dlo],
                    [ahi, bhi, chi, dhi],
                    [ilo, jlo, clo, dlo],
                    [ihi, jhi, chi, dhi],
                )
            };

            // Prefetch the first cd pair, overlapping the still-pending
            // accumulate of the previous task's result tile.
            let (vlo0, vhi0, tlo0, thi0) = bounds(0, 0);
            let hv = v2
                .nb_get_patch_into(&vlo0, &vhi0, &mut vcur)
                .expect("nb get V");
            let ht = t2
                .nb_get_patch_into(&tlo0, &thi0, &mut tcur)
                .expect("nb get T");
            if let Some(h) = pending_acc.take() {
                r2.nb_wait(h).expect("wait acc R");
            }
            v2.nb_wait(hv).expect("wait V");
            t2.nb_wait(ht).expect("wait T");

            let npairs = vt * vt;
            for pair in 0..npairs {
                // Issue the next pair's gets before computing this one.
                let mut inflight = None;
                if pair + 1 < npairs {
                    let (tc, td) = ((pair + 1) / vt, (pair + 1) % vt);
                    let (vlo, vhi, tlo, thi) = bounds(tc, td);
                    let hv = v2
                        .nb_get_patch_into(&vlo, &vhi, &mut vnext)
                        .expect("nb get V");
                    let ht = t2
                        .nb_get_patch_into(&tlo, &thi, &mut tnext)
                        .expect("nb get T");
                    inflight = Some((hv, ht));
                }
                // local DGEMM on the current pair, overlapping the fetch
                for ij in 0..m {
                    for ab in 0..n {
                        let mut acc = 0.0;
                        for cd in 0..k {
                            acc += vcur[ab * k + cd] * tcur[ij * k + cd];
                        }
                        rblock[ij * n + ab] += acc;
                    }
                }
                p.compute(2.0 * (m * n * k) as f64 / flop_rate);
                if let Some((hv, ht)) = inflight {
                    v2.nb_wait(hv).expect("wait V");
                    t2.nb_wait(ht).expect("wait T");
                    std::mem::swap(&mut vcur, &mut vnext);
                    std::mem::swap(&mut tcur, &mut tnext);
                }
            }
            // Issue the result-tile accumulate nonblocking; it completes
            // while the next task fetches its first tiles.
            pending_acc = Some(
                r2.nb_acc_patch(1.0, &[ilo, jlo, alo, blo], &[ihi, jhi, ahi, bhi], &rblock)
                    .expect("nb acc R"),
            );
        }
        if let Some(h) = pending_acc.take() {
            r2.nb_wait(h).expect("wait acc R");
        }
        r2.sync();
        let rt_dot = r2.dot(&t2).expect("dot");
        let tt = t2.dot(&t2).expect("dot");
        energy = rt_dot / (1.0 + tt);
    }

    t2.sync();
    counter.destroy().expect("destroy counter");
    r2.destroy().expect("destroy r2");
    v2.destroy().expect("destroy v2");
    t2.destroy().expect("destroy t2");

    CcsdResult {
        energy,
        elapsed: p.clock().now() - t0,
        tasks_done,
    }
}

/// Runs the same CCSD ladder as [`run_ccsd`] with the chunked schedule
/// production GA codes use: NXTVAL claims [`CCSD_CHUNK`] tasks per RMW,
/// every claimed task's V and T tiles are prefetched in one nonblocking
/// volley — trains of same-array, same-owner gets a coalescing runtime
/// can merge — and the result accumulates are deferred to the iteration
/// fence, which ARMCI's location consistency permits because each r2
/// tile is written by exactly one task. The arithmetic (tile order, cd
/// reduction order, global reductions) is unchanged, so the energy is
/// bit-exact equal to the blocking path; only the communication
/// schedule differs.
pub fn run_ccsd_pipelined<A: Armci + ?Sized>(p: &Proc, rt: &A, cfg: &CcsdConfig) -> CcsdResult {
    cfg.check();
    let t0 = p.clock().now();
    let flop_rate = p.config().platform.compute.flops_per_core;

    let tdims = [cfg.no, cfg.no, cfg.nv, cfg.nv];
    let vdims = [cfg.nv, cfg.nv, cfg.nv, cfg.nv];
    let t2 = GlobalArray::create(rt, "t2", GaType::F64, &tdims).expect("create t2");
    let v2 = GlobalArray::create(rt, "v2", GaType::F64, &vdims).expect("create v2");
    let r2 = GlobalArray::create(rt, "r2", GaType::F64, &tdims).expect("create r2");
    let counter = GlobalArray::create(rt, "nxtval", GaType::I64, &[1]).expect("create counter");

    init_4d(&t2, t2_value);
    init_4d(&v2, v2_value);
    t2.sync();

    let (ot, vt, to, tv) = (cfg.ot(), cfg.vt(), cfg.tile_o, cfg.tile_v);
    let ntasks = cfg.ccsd_tasks();
    let mut tasks_done = 0usize;
    let mut energy = 0.0;

    let m = to * to;
    let n = tv * tv;
    let k = tv * tv;
    let npairs = vt * vt;
    // Tile buffers for a whole claimed chunk's worth of cd pairs.
    let mut vbufs = vec![vec![0.0f64; n * k]; CCSD_CHUNK * npairs];
    let mut tbufs = vec![vec![0.0f64; m * k]; CCSD_CHUNK * npairs];

    for _iter in 0..cfg.iterations {
        r2.zero().expect("zero r2");
        if rt.rank() == 0 {
            counter
                .put_patch_i64(&[0], &[1], &[0])
                .expect("reset counter");
        }
        counter.sync();

        // Result accumulates are retired at the iteration fence, not per
        // task: each r2 tile has exactly one writer, so deferral is safe.
        let mut pending_accs = Vec::new();

        loop {
            let first = counter.read_inc(&[0], CCSD_CHUNK as i64).expect("nxtval") as usize;
            if first >= ntasks {
                break;
            }
            let chunk: Vec<usize> = (first..(first + CCSD_CHUNK).min(ntasks)).collect();
            tasks_done += chunk.len();
            let tile_of = |task: usize| {
                let ti = task / (ot * vt * vt);
                let tj = (task / (vt * vt)) % ot;
                let ta = (task / vt) % vt;
                let tb = task % vt;
                (
                    [ti * to, tj * to, ta * tv, tb * tv],
                    [(ti + 1) * to, (tj + 1) * to, (ta + 1) * tv, (tb + 1) * tv],
                )
            };
            // One prefetch volley for every (task, cd pair) tile in the
            // chunk; gets to the same array and owner queue back to back.
            let mut gets = Vec::new();
            for (t, &task) in chunk.iter().enumerate() {
                let (lo, hi) = tile_of(task);
                for pair in 0..npairs {
                    let (tc, td) = (pair / vt, pair % vt);
                    let (clo, chi) = (tc * tv, (tc + 1) * tv);
                    let (dlo, dhi) = (td * tv, (td + 1) * tv);
                    let slot = t * npairs + pair;
                    gets.push(
                        v2.nb_get_patch_into(
                            &[lo[2], lo[3], clo, dlo],
                            &[hi[2], hi[3], chi, dhi],
                            &mut vbufs[slot],
                        )
                        .expect("nb get V"),
                    );
                    gets.push(
                        t2.nb_get_patch_into(
                            &[lo[0], lo[1], clo, dlo],
                            &[hi[0], hi[1], chi, dhi],
                            &mut tbufs[slot],
                        )
                        .expect("nb get T"),
                    );
                }
            }
            for h in gets {
                t2.nb_wait(h).expect("wait tiles");
            }
            // Compute each task from its prefetched tiles; same cd order
            // as the blocking path, so rblock is bit-identical.
            for (t, &task) in chunk.iter().enumerate() {
                let (lo, hi) = tile_of(task);
                let mut rblock = vec![0.0f64; m * n];
                for pair in 0..npairs {
                    let slot = t * npairs + pair;
                    let (vblk, tblk) = (&vbufs[slot], &tbufs[slot]);
                    for ij in 0..m {
                        for ab in 0..n {
                            let mut acc = 0.0;
                            for cd in 0..k {
                                acc += vblk[ab * k + cd] * tblk[ij * k + cd];
                            }
                            rblock[ij * n + ab] += acc;
                        }
                    }
                    p.compute(2.0 * (m * n * k) as f64 / flop_rate);
                }
                pending_accs.push(r2.nb_acc_patch(1.0, &lo, &hi, &rblock).expect("nb acc R"));
            }
        }
        for h in pending_accs {
            r2.nb_wait(h).expect("wait acc R");
        }
        r2.sync();
        let rt_dot = r2.dot(&t2).expect("dot");
        let tt = t2.dot(&t2).expect("dot");
        energy = rt_dot / (1.0 + tt);
    }

    t2.sync();
    counter.destroy().expect("destroy counter");
    r2.destroy().expect("destroy r2");
    v2.destroy().expect("destroy v2");
    t2.destroy().expect("destroy t2");

    CcsdResult {
        energy,
        elapsed: p.clock().now() - t0,
        tasks_done,
    }
}

/// Tasks claimed per NXTVAL RMW by [`run_ccsd_pipelined`].
pub const CCSD_CHUNK: usize = 4;

/// Runs the (T)-like triples sweep: energy-only, get-dominated, with a
/// triples-scale flop charge per task. Collective.
pub fn run_triples<A: Armci + ?Sized>(p: &Proc, rt: &A, cfg: &CcsdConfig) -> CcsdResult {
    cfg.check();
    let t0 = p.clock().now();
    let flop_rate = p.config().platform.compute.flops_per_core;

    let tdims = [cfg.no, cfg.no, cfg.nv, cfg.nv];
    let t2 = GlobalArray::create(rt, "t2_t", GaType::F64, &tdims).expect("create t2");
    let counter = GlobalArray::create(rt, "nxtval_t", GaType::I64, &[1]).expect("counter");
    init_4d(&t2, t2_value);
    if rt.rank() == 0 {
        counter.put_patch_i64(&[0], &[1], &[0]).expect("reset");
    }
    t2.sync();

    let (ot, vt, to, tv) = (cfg.ot(), cfg.vt(), cfg.tile_o, cfg.tile_v);
    // tasks over (ij-tile, ab-tile); triples weight: no · nv extra flops
    // per amplitude pair (the O(no³nv⁴) / O(no²nv⁴) ratio times nv).
    let ntasks = ot * ot * vt * vt;
    let mut partial = 0.0f64;
    let mut tasks_done = 0usize;
    loop {
        let task = counter.read_inc(&[0], 1).expect("nxtval") as usize;
        if task >= ntasks {
            break;
        }
        tasks_done += 1;
        let ti = task / (ot * vt * vt);
        let tj = (task / (vt * vt)) % ot;
        let ta = (task / vt) % vt;
        let tb = task % vt;
        let lo = [ti * to, tj * to, ta * tv, tb * tv];
        let hi = [(ti + 1) * to, (tj + 1) * to, (ta + 1) * tv, (tb + 1) * tv];
        let blk = t2.get_patch(&lo, &hi).expect("get T");
        // disconnected-triples-like combination: exactly representable
        let mut e = 0.0;
        for (idx, &x) in blk.iter().enumerate() {
            let w = ((idx % 4) + 1) as f64 / 4.0;
            e += x * x * w;
        }
        partial += e;
        let flops = blk.len() as f64 * 3.0 * (cfg.no * cfg.nv * cfg.nv) as f64;
        p.compute(flops / flop_rate);
    }
    // global energy reduction
    let energy = t2
        .group()
        .comm()
        .allreduce_f64(mpisim::coll::ReduceOp::Sum, &[partial])[0];
    t2.sync();
    counter.destroy().expect("destroy counter");
    t2.destroy().expect("destroy t2");
    CcsdResult {
        energy,
        elapsed: p.clock().now() - t0,
        tasks_done,
    }
}

/// Fills each rank's own block of a 4-D array from an index function.
fn init_4d<A: Armci + ?Sized>(
    ga: &GlobalArray<'_, A>,
    f: impl Fn(usize, usize, usize, usize) -> f64 + Copy,
) {
    let (lo, hi) = ga.my_block();
    if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
        let data = fill_patch(
            &[lo[0], lo[1], lo[2], lo[3]],
            &[hi[0], hi[1], hi[2], hi[3]],
            f,
        );
        ga.put_patch(&lo, &hi, &data).expect("init block");
    }
    ga.sync();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_arithmetic() {
        let c = CcsdConfig {
            no: 8,
            nv: 16,
            tile_o: 4,
            tile_v: 8,
            iterations: 1,
        };
        assert_eq!(c.ot(), 2);
        assert_eq!(c.vt(), 2);
        assert_eq!(c.ccsd_tasks(), 16);
        // flops: m=16, n=64, k=256 → 2·16·64·256
        assert_eq!(c.ccsd_task_flops(), 2.0 * 16.0 * 64.0 * 256.0);
        // gets per cd-tile: (64·64 + 16·64)·8 bytes over 4 cd tiles
        assert_eq!(c.ccsd_task_get_bytes(), (64 * 64 + 16 * 64) * 8 * 4);
        assert_eq!(c.ccsd_task_acc_bytes(), 16 * 64 * 8);
    }

    #[test]
    #[should_panic(expected = "tile_o must divide")]
    fn bad_tiling_rejected() {
        let c = CcsdConfig {
            no: 5,
            nv: 8,
            tile_o: 2,
            tile_v: 4,
            iterations: 1,
        };
        c.check();
    }

    #[test]
    fn w5_matches_paper_parameters() {
        let w5 = CcsdConfig::w5();
        assert_eq!(w5.no, 20);
        assert_eq!(w5.nv, 435);
        assert_eq!(w5.no % w5.tile_o, 0);
        assert_eq!(w5.nv % w5.tile_v, 0);
    }
}
