//! Synthetic tensor values.
//!
//! All amplitudes and integrals are **dyadic rationals** (small integers
//! divided by a power of two). Products and modest sums of such values are
//! exactly representable in f64, so the proxy's correlation "energy" is
//! bit-identical no matter how the contraction is tiled, distributed, or
//! which ARMCI backend carries it — turning floating-point reproducibility
//! into a hard correctness oracle.

/// T2-like amplitude for indices `(i, j, c, d)`.
pub fn t2_value(i: usize, j: usize, c: usize, d: usize) -> f64 {
    (((3 * i + 7 * j + 5 * c + 11 * d) % 16) as f64 - 7.5) / 16.0
}

/// Two-electron-integral-like value for indices `(a, b, c, d)`.
pub fn v2_value(a: usize, b: usize, c: usize, d: usize) -> f64 {
    (((5 * a + 3 * b + 13 * c + 7 * d) % 16) as f64 - 8.0) / 32.0
}

/// Fills a dense row-major patch of a 4-D tensor with `f(global idx)`.
pub fn fill_patch(
    lo: &[usize; 4],
    hi: &[usize; 4],
    f: impl Fn(usize, usize, usize, usize) -> f64,
) -> Vec<f64> {
    let mut out =
        Vec::with_capacity((hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]) * (hi[3] - lo[3]));
    for i in lo[0]..hi[0] {
        for j in lo[1]..hi[1] {
            for c in lo[2]..hi[2] {
                for d in lo[3]..hi[3] {
                    out.push(f(i, j, c, d));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_dyadic_and_bounded() {
        for idx in 0..200 {
            let t = t2_value(idx, idx / 2, idx / 3, idx / 5);
            let v = v2_value(idx, idx / 2, idx / 3, idx / 5);
            assert!(t.abs() <= 0.5);
            assert!(v.abs() <= 0.25);
            // exactly representable: scaling by 32 gives an integer
            assert_eq!((t * 32.0).fract(), 0.0);
            assert_eq!((v * 32.0).fract(), 0.0);
        }
    }

    #[test]
    fn fill_patch_row_major_order() {
        let p = fill_patch(&[0, 0, 0, 0], &[1, 1, 2, 2], |_, _, c, d| {
            (c * 10 + d) as f64
        });
        assert_eq!(p, vec![0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn fill_patch_uses_global_indices() {
        let p = fill_patch(&[2, 3, 4, 5], &[3, 4, 5, 6], |i, j, c, d| {
            (i * 1000 + j * 100 + c * 10 + d) as f64
        });
        assert_eq!(p, vec![2345.0]);
    }
}
