//! Analytic per-task profiles at full problem scale.
//!
//! `scalesim` replays Figure 6 with thousands of logical processes; it
//! needs, per backend and platform, the virtual-time cost of one task's
//! communication and computation plus the NXTVAL service time. Those are
//! derived here from the *same* [`simnet`] cost models the executable
//! runtimes charge, so the DES and the thread-level simulation agree by
//! construction.

use crate::ccsd::CcsdConfig;
use simnet::{Op, Platform, StridedMethodCost};

/// Which runtime carries the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    ArmciMpi,
    Native,
}

/// Which proxy phase is being profiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProxyPhase {
    Ccsd,
    Triples,
}

/// Cost profile of one task.
#[derive(Debug, Clone, Copy)]
pub struct TaskProfile {
    /// Tasks per iteration.
    pub ntasks: usize,
    /// Origin-side communication time per task, seconds.
    pub comm_time: f64,
    /// Local computation time per task, seconds.
    pub compute_time: f64,
    /// NXTVAL (fetch-and-add) service time at the counter host, seconds.
    pub nxtval_service: f64,
}

/// Strided transfer cost for a 2-D tile of `rows × row_bytes` using the
/// backend's best strided method.
fn tile_cost(
    params: &simnet::BackendParams,
    backend: Backend,
    op: Op,
    rows: usize,
    row_bytes: usize,
) -> f64 {
    let method = match backend {
        Backend::ArmciMpi => StridedMethodCost::DirectStrided,
        Backend::Native => StridedMethodCost::Native,
    };
    params.strided_cost(method, op, rows, row_bytes)
}

/// NXTVAL service time: the time the counter host is occupied per
/// request.
///
/// * Native: the CHT services a hardware fetch-and-add.
/// * ARMCI-MPI: the §V-D mutex protocol — mutex lock epoch, read epoch,
///   write epoch, mutex unlock epoch (four exclusive epochs plus two
///   notification latencies when contended).
pub fn nxtval_service(platform: &Platform, backend: Backend) -> f64 {
    match backend {
        Backend::Native => platform.native.rmw_latency,
        Backend::ArmciMpi => {
            let p = &platform.mpi;
            let epoch = p.epoch_overhead + p.op_overhead + p.put.alpha;
            4.0 * epoch + 2.0 * p.put.alpha
        }
    }
}

/// Builds the per-task profile for a phase.
pub fn task_profile(
    cfg: &CcsdConfig,
    platform: &Platform,
    backend: Backend,
    phase: ProxyPhase,
) -> TaskProfile {
    let params = match backend {
        Backend::ArmciMpi => &platform.mpi,
        Backend::Native => &platform.native,
    };
    let flop_rate = platform.compute.flops_per_core;
    let (to, tv, vt) = (cfg.tile_o, cfg.tile_v, cfg.vt());
    match phase {
        ProxyPhase::Ccsd => {
            // per cd-tile: get V tile (tv² rows × tv²·8 bytes... tiles are
            // 4-D patches; model as (rows = tv·tv) strided gets of tv·8-byte
            // rows for V and (to·to) rows of tv·8 for T, per (c,d) plane.
            let v_get = tile_cost(params, backend, Op::Get, tv * tv * tv, tv * 8);
            let t_get = tile_cost(params, backend, Op::Get, to * to * tv, tv * 8);
            let acc = tile_cost(params, backend, Op::Acc, to * to * tv, tv * 8);
            let comm = (v_get + t_get) * (vt * vt) as f64 + acc;
            TaskProfile {
                ntasks: cfg.ccsd_tasks(),
                comm_time: comm,
                compute_time: cfg.ccsd_task_flops() / flop_rate,
                nxtval_service: nxtval_service(platform, backend),
            }
        }
        ProxyPhase::Triples => {
            // (T) fetches the same V/T tile stream as the ladder (energy
            // only — no accumulates) but performs no·nv² work per
            // amplitude pair, so one sweep is Θ(no³·nv⁴) flops: the
            // compute-dominant (T) character.
            let v_get = tile_cost(params, backend, Op::Get, tv * tv * tv, tv * 8);
            let t_get = tile_cost(params, backend, Op::Get, to * to * tv, tv * 8);
            let comm = (v_get + t_get) * (vt * vt) as f64;
            let amp = (to * to * tv * tv) as f64;
            let flops = amp * 3.0 * (cfg.no * cfg.nv * cfg.nv) as f64;
            TaskProfile {
                ntasks: cfg.ot() * cfg.ot() * cfg.vt() * cfg.vt(),
                comm_time: comm,
                compute_time: flops / flop_rate,
                nxtval_service: nxtval_service(platform, backend),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::PlatformId;

    #[test]
    fn mpi_nxtval_much_slower_than_native() {
        for id in PlatformId::ALL {
            let p = Platform::get(id);
            let mpi = nxtval_service(&p, Backend::ArmciMpi);
            let nat = nxtval_service(&p, Backend::Native);
            assert!(mpi > 2.0 * nat, "{id:?}: mpi {mpi} native {nat}");
        }
    }

    #[test]
    fn triples_has_higher_flop_to_byte_ratio() {
        let cfg = CcsdConfig::w5();
        let p = Platform::get(PlatformId::InfiniBandCluster);
        let c = task_profile(&cfg, &p, Backend::ArmciMpi, ProxyPhase::Ccsd);
        let t = task_profile(&cfg, &p, Backend::ArmciMpi, ProxyPhase::Triples);
        let c_ratio = c.compute_time / c.comm_time;
        let t_ratio = t.compute_time / t.comm_time;
        assert!(t_ratio > c_ratio, "ccsd {c_ratio} triples {t_ratio}");
    }

    #[test]
    fn native_comm_cheaper_on_infiniband() {
        let cfg = CcsdConfig::w5();
        let p = Platform::get(PlatformId::InfiniBandCluster);
        let m = task_profile(&cfg, &p, Backend::ArmciMpi, ProxyPhase::Ccsd);
        let n = task_profile(&cfg, &p, Backend::Native, ProxyPhase::Ccsd);
        assert!(n.comm_time < m.comm_time);
        // compute identical across backends
        assert_eq!(n.compute_time, m.compute_time);
    }

    #[test]
    fn mpi_comm_cheaper_on_cray_xe() {
        let cfg = CcsdConfig::w5();
        let p = Platform::get(PlatformId::CrayXE6);
        let m = task_profile(&cfg, &p, Backend::ArmciMpi, ProxyPhase::Ccsd);
        let n = task_profile(&cfg, &p, Backend::Native, ProxyPhase::Ccsd);
        assert!(
            m.comm_time < n.comm_time,
            "mpi {} native {}",
            m.comm_time,
            n.comm_time
        );
    }
}
