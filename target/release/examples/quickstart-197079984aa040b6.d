/root/repo/target/release/examples/quickstart-197079984aa040b6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-197079984aa040b6: examples/quickstart.rs

examples/quickstart.rs:
