/root/repo/target/release/deps/bench-e817752844460903.d: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

/root/repo/target/release/deps/libbench-e817752844460903.rlib: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

/root/repo/target/release/deps/libbench-e817752844460903.rmeta: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ds_compare.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6r.rs:
crates/bench/src/table2.rs:
