/root/repo/target/release/deps/armci-2f90791852becf88.d: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

/root/repo/target/release/deps/libarmci-2f90791852becf88.rlib: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

/root/repo/target/release/deps/libarmci-2f90791852becf88.rmeta: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

crates/armci/src/lib.rs:
crates/armci/src/acc.rs:
crates/armci/src/error.rs:
crates/armci/src/group.rs:
crates/armci/src/stride.rs:
crates/armci/src/traits.rs:
crates/armci/src/types.rs:
