/root/repo/target/release/deps/simnet-3de59058fda6ccc7.d: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

/root/repo/target/release/deps/libsimnet-3de59058fda6ccc7.rlib: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

/root/repo/target/release/deps/libsimnet-3de59058fda6ccc7.rmeta: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

crates/simnet/src/lib.rs:
crates/simnet/src/clock.rs:
crates/simnet/src/cost.rs:
crates/simnet/src/platform.rs:
crates/simnet/src/registration.rs:
