/root/repo/target/release/deps/ga-678f34aa4c721157.d: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

/root/repo/target/release/deps/libga-678f34aa4c721157.rlib: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

/root/repo/target/release/deps/libga-678f34aa4c721157.rmeta: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

crates/ga/src/lib.rs:
crates/ga/src/array.rs:
crates/ga/src/dist.rs:
crates/ga/src/gather.rs:
crates/ga/src/ghosts.rs:
crates/ga/src/gop.rs:
crates/ga/src/linalg.rs:
crates/ga/src/math.rs:
