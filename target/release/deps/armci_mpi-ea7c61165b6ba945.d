/root/repo/target/release/deps/armci_mpi-ea7c61165b6ba945.d: crates/core/src/lib.rs crates/core/src/dla.rs crates/core/src/gmr.rs crates/core/src/iov.rs crates/core/src/mutex.rs crates/core/src/ops.rs crates/core/src/rmw.rs crates/core/src/strided.rs

/root/repo/target/release/deps/libarmci_mpi-ea7c61165b6ba945.rlib: crates/core/src/lib.rs crates/core/src/dla.rs crates/core/src/gmr.rs crates/core/src/iov.rs crates/core/src/mutex.rs crates/core/src/ops.rs crates/core/src/rmw.rs crates/core/src/strided.rs

/root/repo/target/release/deps/libarmci_mpi-ea7c61165b6ba945.rmeta: crates/core/src/lib.rs crates/core/src/dla.rs crates/core/src/gmr.rs crates/core/src/iov.rs crates/core/src/mutex.rs crates/core/src/ops.rs crates/core/src/rmw.rs crates/core/src/strided.rs

crates/core/src/lib.rs:
crates/core/src/dla.rs:
crates/core/src/gmr.rs:
crates/core/src/iov.rs:
crates/core/src/mutex.rs:
crates/core/src/ops.rs:
crates/core/src/rmw.rs:
crates/core/src/strided.rs:
