/root/repo/target/release/deps/figures-23b1f502c8a862eb.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-23b1f502c8a862eb: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
