/root/repo/target/release/deps/armci_ds-5a3a11c9d59f46dc.d: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

/root/repo/target/release/deps/libarmci_ds-5a3a11c9d59f46dc.rlib: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

/root/repo/target/release/deps/libarmci_ds-5a3a11c9d59f46dc.rmeta: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

crates/armci-ds/src/lib.rs:
crates/armci-ds/src/protocol.rs:
crates/armci-ds/src/server.rs:
