/root/repo/target/release/deps/nwchem_proxy-ebb29494d117ad0c.d: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

/root/repo/target/release/deps/libnwchem_proxy-ebb29494d117ad0c.rlib: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

/root/repo/target/release/deps/libnwchem_proxy-ebb29494d117ad0c.rmeta: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

crates/nwchem-proxy/src/lib.rs:
crates/nwchem-proxy/src/ccsd.rs:
crates/nwchem-proxy/src/profile.rs:
crates/nwchem-proxy/src/tensors.rs:
