/root/repo/target/release/deps/scalesim-603218b2942e1bf0.d: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

/root/repo/target/release/deps/libscalesim-603218b2942e1bf0.rlib: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

/root/repo/target/release/deps/libscalesim-603218b2942e1bf0.rmeta: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

crates/scalesim/src/lib.rs:
crates/scalesim/src/fig6.rs:
