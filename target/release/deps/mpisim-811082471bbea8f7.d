/root/repo/target/release/deps/mpisim-811082471bbea8f7.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

/root/repo/target/release/deps/libmpisim-811082471bbea8f7.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

/root/repo/target/release/deps/libmpisim-811082471bbea8f7.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/error.rs:
crates/mpisim/src/mpi3.rs:
crates/mpisim/src/p2p.rs:
crates/mpisim/src/runtime.rs:
crates/mpisim/src/win.rs:
