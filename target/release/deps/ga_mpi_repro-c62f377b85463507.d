/root/repo/target/release/deps/ga_mpi_repro-c62f377b85463507.d: src/lib.rs

/root/repo/target/release/deps/libga_mpi_repro-c62f377b85463507.rlib: src/lib.rs

/root/repo/target/release/deps/libga_mpi_repro-c62f377b85463507.rmeta: src/lib.rs

src/lib.rs:
