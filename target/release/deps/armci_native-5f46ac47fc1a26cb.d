/root/repo/target/release/deps/armci_native-5f46ac47fc1a26cb.d: crates/armci-native/src/lib.rs

/root/repo/target/release/deps/libarmci_native-5f46ac47fc1a26cb.rlib: crates/armci-native/src/lib.rs

/root/repo/target/release/deps/libarmci_native-5f46ac47fc1a26cb.rmeta: crates/armci-native/src/lib.rs

crates/armci-native/src/lib.rs:
