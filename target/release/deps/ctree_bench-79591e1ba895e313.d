/root/repo/target/release/deps/ctree_bench-79591e1ba895e313.d: crates/bench/benches/ctree_bench.rs

/root/repo/target/release/deps/ctree_bench-79591e1ba895e313: crates/bench/benches/ctree_bench.rs

crates/bench/benches/ctree_bench.rs:
