/root/repo/target/release/deps/ctree-79675fa40e4927e9.d: crates/ctree/src/lib.rs

/root/repo/target/release/deps/libctree-79675fa40e4927e9.rlib: crates/ctree/src/lib.rs

/root/repo/target/release/deps/libctree-79675fa40e4927e9.rmeta: crates/ctree/src/lib.rs

crates/ctree/src/lib.rs:
