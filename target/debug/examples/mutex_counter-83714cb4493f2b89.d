/root/repo/target/debug/examples/mutex_counter-83714cb4493f2b89.d: examples/mutex_counter.rs

/root/repo/target/debug/examples/mutex_counter-83714cb4493f2b89: examples/mutex_counter.rs

examples/mutex_counter.rs:
