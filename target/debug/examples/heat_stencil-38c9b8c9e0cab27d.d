/root/repo/target/debug/examples/heat_stencil-38c9b8c9e0cab27d.d: examples/heat_stencil.rs

/root/repo/target/debug/examples/heat_stencil-38c9b8c9e0cab27d: examples/heat_stencil.rs

examples/heat_stencil.rs:
