/root/repo/target/debug/examples/ccsd_proxy-3ac4c2271b93fa60.d: examples/ccsd_proxy.rs

/root/repo/target/debug/examples/ccsd_proxy-3ac4c2271b93fa60: examples/ccsd_proxy.rs

examples/ccsd_proxy.rs:
