/root/repo/target/debug/examples/quickstart-0a9fcf1c5f291ee0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0a9fcf1c5f291ee0: examples/quickstart.rs

examples/quickstart.rs:
