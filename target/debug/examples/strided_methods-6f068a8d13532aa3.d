/root/repo/target/debug/examples/strided_methods-6f068a8d13532aa3.d: examples/strided_methods.rs

/root/repo/target/debug/examples/strided_methods-6f068a8d13532aa3: examples/strided_methods.rs

examples/strided_methods.rs:
