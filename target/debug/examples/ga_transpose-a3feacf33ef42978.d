/root/repo/target/debug/examples/ga_transpose-a3feacf33ef42978.d: examples/ga_transpose.rs

/root/repo/target/debug/examples/ga_transpose-a3feacf33ef42978: examples/ga_transpose.rs

examples/ga_transpose.rs:
