/root/repo/target/debug/deps/simnet-b1e35a7bf227eb27.d: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

/root/repo/target/debug/deps/libsimnet-b1e35a7bf227eb27.rlib: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

/root/repo/target/debug/deps/libsimnet-b1e35a7bf227eb27.rmeta: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

crates/simnet/src/lib.rs:
crates/simnet/src/clock.rs:
crates/simnet/src/cost.rs:
crates/simnet/src/platform.rs:
crates/simnet/src/registration.rs:
