/root/repo/target/debug/deps/mutex_protocol-f2dd7d73409771c5.d: crates/core/tests/mutex_protocol.rs

/root/repo/target/debug/deps/mutex_protocol-f2dd7d73409771c5: crates/core/tests/mutex_protocol.rs

crates/core/tests/mutex_protocol.rs:
