/root/repo/target/debug/deps/armci_native-ed92a41c1fb8998e.d: crates/armci-native/src/lib.rs

/root/repo/target/debug/deps/armci_native-ed92a41c1fb8998e: crates/armci-native/src/lib.rs

crates/armci-native/src/lib.rs:
