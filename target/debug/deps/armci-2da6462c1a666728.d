/root/repo/target/debug/deps/armci-2da6462c1a666728.d: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

/root/repo/target/debug/deps/libarmci-2da6462c1a666728.rlib: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

/root/repo/target/debug/deps/libarmci-2da6462c1a666728.rmeta: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

crates/armci/src/lib.rs:
crates/armci/src/acc.rs:
crates/armci/src/error.rs:
crates/armci/src/group.rs:
crates/armci/src/stride.rs:
crates/armci/src/traits.rs:
crates/armci/src/types.rs:
