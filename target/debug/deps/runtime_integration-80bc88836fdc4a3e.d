/root/repo/target/debug/deps/runtime_integration-80bc88836fdc4a3e.d: crates/mpisim/tests/runtime_integration.rs

/root/repo/target/debug/deps/runtime_integration-80bc88836fdc4a3e: crates/mpisim/tests/runtime_integration.rs

crates/mpisim/tests/runtime_integration.rs:
