/root/repo/target/debug/deps/proptest_ga-e5c2564495a82e65.d: crates/ga/tests/proptest_ga.rs

/root/repo/target/debug/deps/proptest_ga-e5c2564495a82e65: crates/ga/tests/proptest_ga.rs

crates/ga/tests/proptest_ga.rs:
