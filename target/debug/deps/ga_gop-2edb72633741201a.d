/root/repo/target/debug/deps/ga_gop-2edb72633741201a.d: crates/ga/tests/ga_gop.rs

/root/repo/target/debug/deps/ga_gop-2edb72633741201a: crates/ga/tests/ga_gop.rs

crates/ga/tests/ga_gop.rs:
