/root/repo/target/debug/deps/mpisim-682a8d0e3b3662d3.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

/root/repo/target/debug/deps/libmpisim-682a8d0e3b3662d3.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

/root/repo/target/debug/deps/libmpisim-682a8d0e3b3662d3.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/error.rs:
crates/mpisim/src/mpi3.rs:
crates/mpisim/src/p2p.rs:
crates/mpisim/src/runtime.rs:
crates/mpisim/src/win.rs:
