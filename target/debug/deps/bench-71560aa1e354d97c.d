/root/repo/target/debug/deps/bench-71560aa1e354d97c.d: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libbench-71560aa1e354d97c.rlib: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libbench-71560aa1e354d97c.rmeta: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ds_compare.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6r.rs:
crates/bench/src/table2.rs:
