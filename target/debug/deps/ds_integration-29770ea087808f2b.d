/root/repo/target/debug/deps/ds_integration-29770ea087808f2b.d: crates/armci-ds/tests/ds_integration.rs

/root/repo/target/debug/deps/ds_integration-29770ea087808f2b: crates/armci-ds/tests/ds_integration.rs

crates/armci-ds/tests/ds_integration.rs:
