/root/repo/target/debug/deps/iov_error_detection-dccbb741de46bd91.d: crates/core/tests/iov_error_detection.rs

/root/repo/target/debug/deps/iov_error_detection-dccbb741de46bd91: crates/core/tests/iov_error_detection.rs

crates/core/tests/iov_error_detection.rs:
