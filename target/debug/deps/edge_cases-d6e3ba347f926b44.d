/root/repo/target/debug/deps/edge_cases-d6e3ba347f926b44.d: crates/mpisim/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-d6e3ba347f926b44: crates/mpisim/tests/edge_cases.rs

crates/mpisim/tests/edge_cases.rs:
