/root/repo/target/debug/deps/armci_mpi_integration-083c2b916eb73332.d: crates/core/tests/armci_mpi_integration.rs

/root/repo/target/debug/deps/armci_mpi_integration-083c2b916eb73332: crates/core/tests/armci_mpi_integration.rs

crates/core/tests/armci_mpi_integration.rs:
