/root/repo/target/debug/deps/mpisim-4154335fa09080b8.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

/root/repo/target/debug/deps/mpisim-4154335fa09080b8: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/error.rs crates/mpisim/src/mpi3.rs crates/mpisim/src/p2p.rs crates/mpisim/src/runtime.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/error.rs:
crates/mpisim/src/mpi3.rs:
crates/mpisim/src/p2p.rs:
crates/mpisim/src/runtime.rs:
crates/mpisim/src/win.rs:
