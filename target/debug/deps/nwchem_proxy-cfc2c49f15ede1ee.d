/root/repo/target/debug/deps/nwchem_proxy-cfc2c49f15ede1ee.d: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

/root/repo/target/debug/deps/libnwchem_proxy-cfc2c49f15ede1ee.rlib: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

/root/repo/target/debug/deps/libnwchem_proxy-cfc2c49f15ede1ee.rmeta: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

crates/nwchem-proxy/src/lib.rs:
crates/nwchem-proxy/src/ccsd.rs:
crates/nwchem-proxy/src/profile.rs:
crates/nwchem-proxy/src/tensors.rs:
