/root/repo/target/debug/deps/nwchem_proxy-977bd258e981566a.d: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

/root/repo/target/debug/deps/nwchem_proxy-977bd258e981566a: crates/nwchem-proxy/src/lib.rs crates/nwchem-proxy/src/ccsd.rs crates/nwchem-proxy/src/profile.rs crates/nwchem-proxy/src/tensors.rs

crates/nwchem-proxy/src/lib.rs:
crates/nwchem-proxy/src/ccsd.rs:
crates/nwchem-proxy/src/profile.rs:
crates/nwchem-proxy/src/tensors.rs:
