/root/repo/target/debug/deps/ga-8c05e3540f209f8c.d: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

/root/repo/target/debug/deps/libga-8c05e3540f209f8c.rlib: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

/root/repo/target/debug/deps/libga-8c05e3540f209f8c.rmeta: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

crates/ga/src/lib.rs:
crates/ga/src/array.rs:
crates/ga/src/dist.rs:
crates/ga/src/gather.rs:
crates/ga/src/ghosts.rs:
crates/ga/src/gop.rs:
crates/ga/src/linalg.rs:
crates/ga/src/math.rs:
