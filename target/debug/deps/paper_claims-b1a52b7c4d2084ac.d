/root/repo/target/debug/deps/paper_claims-b1a52b7c4d2084ac.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-b1a52b7c4d2084ac: tests/paper_claims.rs

tests/paper_claims.rs:
