/root/repo/target/debug/deps/ga_mpi_repro-96eaeaeefa7256d4.d: src/lib.rs

/root/repo/target/debug/deps/libga_mpi_repro-96eaeaeefa7256d4.rlib: src/lib.rs

/root/repo/target/debug/deps/libga_mpi_repro-96eaeaeefa7256d4.rmeta: src/lib.rs

src/lib.rs:
