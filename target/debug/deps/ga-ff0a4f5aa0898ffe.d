/root/repo/target/debug/deps/ga-ff0a4f5aa0898ffe.d: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

/root/repo/target/debug/deps/ga-ff0a4f5aa0898ffe: crates/ga/src/lib.rs crates/ga/src/array.rs crates/ga/src/dist.rs crates/ga/src/gather.rs crates/ga/src/ghosts.rs crates/ga/src/gop.rs crates/ga/src/linalg.rs crates/ga/src/math.rs

crates/ga/src/lib.rs:
crates/ga/src/array.rs:
crates/ga/src/dist.rs:
crates/ga/src/gather.rs:
crates/ga/src/ghosts.rs:
crates/ga/src/gop.rs:
crates/ga/src/linalg.rs:
crates/ga/src/math.rs:
