/root/repo/target/debug/deps/scalesim-bc6f8c99ed6380dd.d: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

/root/repo/target/debug/deps/libscalesim-bc6f8c99ed6380dd.rlib: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

/root/repo/target/debug/deps/libscalesim-bc6f8c99ed6380dd.rmeta: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

crates/scalesim/src/lib.rs:
crates/scalesim/src/fig6.rs:
