/root/repo/target/debug/deps/ga_mpi_repro-8f77ec5a740c3b4d.d: src/lib.rs

/root/repo/target/debug/deps/ga_mpi_repro-8f77ec5a740c3b4d: src/lib.rs

src/lib.rs:
