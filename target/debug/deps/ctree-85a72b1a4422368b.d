/root/repo/target/debug/deps/ctree-85a72b1a4422368b.d: crates/ctree/src/lib.rs

/root/repo/target/debug/deps/ctree-85a72b1a4422368b: crates/ctree/src/lib.rs

crates/ctree/src/lib.rs:
