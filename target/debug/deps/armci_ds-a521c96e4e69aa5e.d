/root/repo/target/debug/deps/armci_ds-a521c96e4e69aa5e.d: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

/root/repo/target/debug/deps/libarmci_ds-a521c96e4e69aa5e.rlib: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

/root/repo/target/debug/deps/libarmci_ds-a521c96e4e69aa5e.rmeta: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

crates/armci-ds/src/lib.rs:
crates/armci-ds/src/protocol.rs:
crates/armci-ds/src/server.rs:
