/root/repo/target/debug/deps/armci_ds-e934c7687b09b475.d: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

/root/repo/target/debug/deps/armci_ds-e934c7687b09b475: crates/armci-ds/src/lib.rs crates/armci-ds/src/protocol.rs crates/armci-ds/src/server.rs

crates/armci-ds/src/lib.rs:
crates/armci-ds/src/protocol.rs:
crates/armci-ds/src/server.rs:
