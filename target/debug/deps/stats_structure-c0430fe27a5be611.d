/root/repo/target/debug/deps/stats_structure-c0430fe27a5be611.d: crates/core/tests/stats_structure.rs

/root/repo/target/debug/deps/stats_structure-c0430fe27a5be611: crates/core/tests/stats_structure.rs

crates/core/tests/stats_structure.rs:
