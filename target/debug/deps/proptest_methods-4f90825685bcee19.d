/root/repo/target/debug/deps/proptest_methods-4f90825685bcee19.d: crates/core/tests/proptest_methods.rs

/root/repo/target/debug/deps/proptest_methods-4f90825685bcee19: crates/core/tests/proptest_methods.rs

crates/core/tests/proptest_methods.rs:
