/root/repo/target/debug/deps/armci_mpi-69b281f625f614ed.d: crates/core/src/lib.rs crates/core/src/dla.rs crates/core/src/gmr.rs crates/core/src/iov.rs crates/core/src/mutex.rs crates/core/src/ops.rs crates/core/src/rmw.rs crates/core/src/strided.rs

/root/repo/target/debug/deps/armci_mpi-69b281f625f614ed: crates/core/src/lib.rs crates/core/src/dla.rs crates/core/src/gmr.rs crates/core/src/iov.rs crates/core/src/mutex.rs crates/core/src/ops.rs crates/core/src/rmw.rs crates/core/src/strided.rs

crates/core/src/lib.rs:
crates/core/src/dla.rs:
crates/core/src/gmr.rs:
crates/core/src/iov.rs:
crates/core/src/mutex.rs:
crates/core/src/ops.rs:
crates/core/src/rmw.rs:
crates/core/src/strided.rs:
