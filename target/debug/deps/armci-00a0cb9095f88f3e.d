/root/repo/target/debug/deps/armci-00a0cb9095f88f3e.d: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

/root/repo/target/debug/deps/armci-00a0cb9095f88f3e: crates/armci/src/lib.rs crates/armci/src/acc.rs crates/armci/src/error.rs crates/armci/src/group.rs crates/armci/src/stride.rs crates/armci/src/traits.rs crates/armci/src/types.rs

crates/armci/src/lib.rs:
crates/armci/src/acc.rs:
crates/armci/src/error.rs:
crates/armci/src/group.rs:
crates/armci/src/stride.rs:
crates/armci/src/traits.rs:
crates/armci/src/types.rs:
