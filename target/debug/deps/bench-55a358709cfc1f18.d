/root/repo/target/debug/deps/bench-55a358709cfc1f18.d: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/bench-55a358709cfc1f18: crates/bench/src/lib.rs crates/bench/src/ds_compare.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6r.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ds_compare.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6r.rs:
crates/bench/src/table2.rs:
