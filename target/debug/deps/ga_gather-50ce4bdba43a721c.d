/root/repo/target/debug/deps/ga_gather-50ce4bdba43a721c.d: crates/ga/tests/ga_gather.rs

/root/repo/target/debug/deps/ga_gather-50ce4bdba43a721c: crates/ga/tests/ga_gather.rs

crates/ga/tests/ga_gather.rs:
