/root/repo/target/debug/deps/scalesim-ad236aa3c71715af.d: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

/root/repo/target/debug/deps/scalesim-ad236aa3c71715af: crates/scalesim/src/lib.rs crates/scalesim/src/fig6.rs

crates/scalesim/src/lib.rs:
crates/scalesim/src/fig6.rs:
