/root/repo/target/debug/deps/proxy_integration-12c5112c506c5bcf.d: crates/nwchem-proxy/tests/proxy_integration.rs

/root/repo/target/debug/deps/proxy_integration-12c5112c506c5bcf: crates/nwchem-proxy/tests/proxy_integration.rs

crates/nwchem-proxy/tests/proxy_integration.rs:
