/root/repo/target/debug/deps/ga_integration-d978cd1594df0013.d: crates/ga/tests/ga_integration.rs

/root/repo/target/debug/deps/ga_integration-d978cd1594df0013: crates/ga/tests/ga_integration.rs

crates/ga/tests/ga_integration.rs:
