/root/repo/target/debug/deps/simnet-b7258245f37d1614.d: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

/root/repo/target/debug/deps/simnet-b7258245f37d1614: crates/simnet/src/lib.rs crates/simnet/src/clock.rs crates/simnet/src/cost.rs crates/simnet/src/platform.rs crates/simnet/src/registration.rs

crates/simnet/src/lib.rs:
crates/simnet/src/clock.rs:
crates/simnet/src/cost.rs:
crates/simnet/src/platform.rs:
crates/simnet/src/registration.rs:
