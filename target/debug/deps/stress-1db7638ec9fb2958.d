/root/repo/target/debug/deps/stress-1db7638ec9fb2958.d: tests/stress.rs

/root/repo/target/debug/deps/stress-1db7638ec9fb2958: tests/stress.rs

tests/stress.rs:
