/root/repo/target/debug/deps/armci_native-68917bfb63c37abe.d: crates/armci-native/src/lib.rs

/root/repo/target/debug/deps/libarmci_native-68917bfb63c37abe.rlib: crates/armci-native/src/lib.rs

/root/repo/target/debug/deps/libarmci_native-68917bfb63c37abe.rmeta: crates/armci-native/src/lib.rs

crates/armci-native/src/lib.rs:
