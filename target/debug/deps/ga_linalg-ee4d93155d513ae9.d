/root/repo/target/debug/deps/ga_linalg-ee4d93155d513ae9.d: crates/ga/tests/ga_linalg.rs

/root/repo/target/debug/deps/ga_linalg-ee4d93155d513ae9: crates/ga/tests/ga_linalg.rs

crates/ga/tests/ga_linalg.rs:
