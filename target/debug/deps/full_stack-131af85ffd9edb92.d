/root/repo/target/debug/deps/full_stack-131af85ffd9edb92.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-131af85ffd9edb92: tests/full_stack.rs

tests/full_stack.rs:
