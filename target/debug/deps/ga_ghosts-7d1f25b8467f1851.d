/root/repo/target/debug/deps/ga_ghosts-7d1f25b8467f1851.d: crates/ga/tests/ga_ghosts.rs

/root/repo/target/debug/deps/ga_ghosts-7d1f25b8467f1851: crates/ga/tests/ga_ghosts.rs

crates/ga/tests/ga_ghosts.rs:
