/root/repo/target/debug/deps/figures-4f76c795413da363.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-4f76c795413da363: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
