/root/repo/target/debug/deps/proptest_dtype-1447079534ab3e86.d: crates/mpisim/tests/proptest_dtype.rs

/root/repo/target/debug/deps/proptest_dtype-1447079534ab3e86: crates/mpisim/tests/proptest_dtype.rs

crates/mpisim/tests/proptest_dtype.rs:
