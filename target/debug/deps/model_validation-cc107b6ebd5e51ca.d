/root/repo/target/debug/deps/model_validation-cc107b6ebd5e51ca.d: tests/model_validation.rs

/root/repo/target/debug/deps/model_validation-cc107b6ebd5e51ca: tests/model_validation.rs

tests/model_validation.rs:
