/root/repo/target/debug/deps/epochless_mode-61dff8bdd742b4da.d: crates/core/tests/epochless_mode.rs

/root/repo/target/debug/deps/epochless_mode-61dff8bdd742b4da: crates/core/tests/epochless_mode.rs

crates/core/tests/epochless_mode.rs:
