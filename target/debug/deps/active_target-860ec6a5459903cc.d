/root/repo/target/debug/deps/active_target-860ec6a5459903cc.d: crates/mpisim/tests/active_target.rs

/root/repo/target/debug/deps/active_target-860ec6a5459903cc: crates/mpisim/tests/active_target.rs

crates/mpisim/tests/active_target.rs:
