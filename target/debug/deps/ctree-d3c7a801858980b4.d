/root/repo/target/debug/deps/ctree-d3c7a801858980b4.d: crates/ctree/src/lib.rs

/root/repo/target/debug/deps/libctree-d3c7a801858980b4.rlib: crates/ctree/src/lib.rs

/root/repo/target/debug/deps/libctree-d3c7a801858980b4.rmeta: crates/ctree/src/lib.rs

crates/ctree/src/lib.rs:
