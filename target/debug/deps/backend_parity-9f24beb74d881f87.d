/root/repo/target/debug/deps/backend_parity-9f24beb74d881f87.d: crates/armci-native/tests/backend_parity.rs

/root/repo/target/debug/deps/backend_parity-9f24beb74d881f87: crates/armci-native/tests/backend_parity.rs

crates/armci-native/tests/backend_parity.rs:
