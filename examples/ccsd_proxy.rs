//! Runs the NWChem CCSD(T) proxy on both ARMCI backends and shows the
//! Figure 6 scaling study at full w5 scale via the discrete-event model.
//!
//! ```sh
//! cargo run --release --example ccsd_proxy
//! ```

use armci_mpi::ArmciMpi;
use armci_native::ArmciNative;
use mpisim::{Runtime, RuntimeConfig};
use nwchem_proxy::{run_ccsd, Backend, CcsdConfig, ProxyPhase};
use scalesim::fig6;
use simnet::PlatformId;

fn main() {
    // --- executable proxy at laptop scale ------------------------------
    let cfg = CcsdConfig {
        no: 4,
        nv: 16,
        tile_o: 2,
        tile_v: 4,
        iterations: 2,
    };
    println!(
        "executable CCSD proxy: no={} nv={} ({} tasks/iter)",
        cfg.no,
        cfg.nv,
        cfg.ccsd_tasks()
    );
    for nprocs in [1usize, 2, 4] {
        let rcfg = RuntimeConfig::on_platform(PlatformId::InfiniBandCluster);
        let res = Runtime::run_with(nprocs, rcfg, move |p| {
            let rt = ArmciMpi::new(p);
            run_ccsd(p, &rt, &cfg)
        });
        let t = res.iter().map(|r| r.elapsed).fold(0.0f64, f64::max);
        println!(
            "  ARMCI-MPI    P={nprocs}: energy {:+.12e}, {:.2} ms virtual",
            res[0].energy,
            t * 1e3
        );
    }
    let rcfg = RuntimeConfig::on_platform(PlatformId::InfiniBandCluster);
    let res = Runtime::run_with(4, rcfg, move |p| {
        let rt = ArmciNative::new(p);
        run_ccsd(p, &rt, &cfg)
    });
    println!(
        "  ARMCI-Native P=4: energy {:+.12e} (bit-identical: yes — dyadic-rational amplitudes)",
        res[0].energy
    );

    // how the run mapped onto MPI (rank 0's ARMCI-MPI statistics)
    let rcfg = RuntimeConfig::on_platform(PlatformId::InfiniBandCluster);
    let stats = Runtime::run_with(4, rcfg, move |p| {
        let rt = ArmciMpi::new(p);
        run_ccsd(p, &rt, &cfg);
        rt.stats()
    });
    let s = &stats[0];
    println!(
        "  rank 0 op statistics: {} epochs, {} gets ({} KiB), {} accs ({} KiB), {} RMWs, {} mutex locks",
        s.epochs,
        s.gets,
        s.bytes_got / 1024,
        s.accs,
        s.bytes_acc / 1024,
        s.rmws,
        s.mutex_locks
    );

    // --- Figure 6 at full w5 scale (DES) --------------------------------
    println!("\nFigure 6 (w5, no=20, nv=435) — minutes:");
    for id in [PlatformId::InfiniBandCluster, PlatformId::CrayXE6] {
        println!("  {}:", id.name());
        for phase in [ProxyPhase::Ccsd, ProxyPhase::Triples] {
            for backend in [Backend::ArmciMpi, Backend::Native] {
                let series = fig6::series(id, backend, phase);
                let pts: Vec<String> = series
                    .iter()
                    .map(|p| format!("{}:{:.1}", p.cores, p.minutes))
                    .collect();
                println!(
                    "    {:12} {:18} {}",
                    format!("{phase:?}"),
                    format!("{backend:?}"),
                    pts.join("  ")
                );
            }
        }
    }
}
