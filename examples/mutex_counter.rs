//! Synchronisation showcase: the Latham queueing mutex (§V-D) protecting
//! a shared work log, and the mutex-based `ARMCI_Rmw` versus the MPI-3
//! `fetch_and_op` extension (§VIII-B).
//!
//! ```sh
//! cargo run --example mutex_counter
//! ```

use armci::{Armci, ArmciExt};
use armci_mpi::{ArmciMpi, Config};
use mpisim::{Runtime, RuntimeConfig};

fn main() {
    let n = 6;

    // --- Latham queueing mutexes protecting a critical section --------
    let cfg = RuntimeConfig::default();
    let times = Runtime::run_with(n, cfg, |p| {
        let rt = ArmciMpi::new(p);
        let bases = rt.malloc(16).unwrap();
        let h = rt.create_mutexes(1).unwrap();
        rt.barrier();
        for _ in 0..10 {
            rt.lock_mutex(h, 0, 0).unwrap();
            // read-modify-write that would be racy without the mutex
            let v = rt.get_f64s(bases[0], 1).unwrap()[0];
            rt.put_f64s(&[v + 1.0], bases[0]).unwrap();
            rt.unlock_mutex(h, 0, 0).unwrap();
        }
        rt.barrier();
        let total = rt.get_f64s(bases[0], 1).unwrap()[0];
        rt.barrier();
        rt.destroy_mutexes(h).unwrap();
        rt.free(bases[p.rank()]).unwrap();
        (total, p.clock().now())
    });
    println!(
        "mutex-protected counter: {} (expected {}), max virtual time {:.1} µs",
        times[0].0,
        n * 10,
        times.iter().map(|t| t.1).fold(0.0f64, f64::max) * 1e6
    );

    // --- RMW ablation: MPI-2 mutex protocol vs MPI-3 fetch_and_op -----
    for (label, mpi3) in [
        ("MPI-2 mutex-based RMW", false),
        ("MPI-3 fetch_and_op ", true),
    ] {
        let cfg = RuntimeConfig::default();
        let t = Runtime::run_with(n, cfg, move |p| {
            let rt = ArmciMpi::with_config(
                p,
                Config {
                    use_mpi3_rmw: mpi3,
                    // Native atomics are the default now; the MPI-2 arm
                    // must pin the mutex protocol to stay an ablation.
                    atomics: if mpi3 {
                        armci_mpi::AtomicsMode::Native
                    } else {
                        armci_mpi::AtomicsMode::MutexFallback
                    },
                    ..Default::default()
                },
            );
            let bases = rt.malloc(8).unwrap();
            rt.barrier();
            let t0 = p.clock().now();
            for _ in 0..50 {
                rt.fetch_add(bases[0], 1).unwrap();
            }
            let dt = (p.clock().now() - t0) / 50.0;
            rt.barrier();
            rt.free(bases[p.rank()]).unwrap();
            dt
        });
        let avg: f64 = t.iter().sum::<f64>() / n as f64;
        println!(
            "{label}: {:.2} µs per NXTVAL under {n}-way contention",
            avg * 1e6
        );
    }
}
