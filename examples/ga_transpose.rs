//! Domain scenario: distributed out-of-place matrix transpose with
//! Global Arrays — every process transposes its own destination block by
//! fetching the mirrored patch from the source array, a classic GA
//! locality pattern (compare `GA_Transpose`).
//!
//! Also demonstrates the §VIII-A access-mode extension: the source array
//! is marked read-only during the transpose phase so ARMCI-MPI can use
//! shared locks for the concurrent gets.
//!
//! ```sh
//! cargo run --example ga_transpose
//! ```

use armci::{AccessMode, Armci};
use armci_mpi::ArmciMpi;
use ga::{GaType, GlobalArray};
use mpisim::{Runtime, RuntimeConfig};
use simnet::PlatformId;

fn main() {
    let rows = 12usize;
    let cols = 8usize;
    let cfg = RuntimeConfig::on_platform(PlatformId::CrayXE6);
    Runtime::run_with(6, cfg, |p| {
        let rt = ArmciMpi::new(p);
        let a = GlobalArray::create(&rt, "A", GaType::F64, &[rows, cols]).unwrap();
        let at = GlobalArray::create(&rt, "At", GaType::F64, &[cols, rows]).unwrap();

        // Initialise A: element (i, j) = i·100 + j, each rank its block.
        let (lo, hi) = a.my_block();
        if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
            let mut data = Vec::new();
            for i in lo[0]..hi[0] {
                for j in lo[1]..hi[1] {
                    data.push((i * 100 + j) as f64);
                }
            }
            a.put_patch(&lo, &hi, &data).unwrap();
        }
        a.sync();

        // Transpose phase: A becomes read-only — concurrent shared-lock
        // gets instead of exclusive epochs.
        a.set_access_mode(AccessMode::ReadOnly).unwrap();

        let (tlo, thi) = at.my_block();
        if tlo.iter().zip(&thi).all(|(&l, &h)| l < h) {
            // fetch A[tlo1..thi1, tlo0..thi0] and transpose locally
            let src = a.get_patch(&[tlo[1], tlo[0]], &[thi[1], thi[0]]).unwrap();
            let (sr, sc) = (thi[1] - tlo[1], thi[0] - tlo[0]);
            let mut dst = vec![0.0; sr * sc];
            for r in 0..sr {
                for c in 0..sc {
                    dst[c * sr + r] = src[r * sc + c];
                }
            }
            at.put_patch(&tlo, &thi, &dst).unwrap();
        }
        a.set_access_mode(AccessMode::Standard).unwrap();
        at.sync();

        // Verify from rank 0 and report.
        if rt.rank() == 0 {
            let full = at.get_patch(&[0, 0], &[cols, rows]).unwrap();
            let mut errors = 0;
            for i in 0..cols {
                for j in 0..rows {
                    if full[i * rows + j] != (j * 100 + i) as f64 {
                        errors += 1;
                    }
                }
            }
            println!(
                "transpose of {rows}x{cols} across 6 ranks: {} ({} errors), \
                 virtual time {:.1} µs",
                if errors == 0 { "OK" } else { "FAILED" },
                errors,
                p.clock().now() * 1e6
            );
        }

        at.sync();
        a.destroy().unwrap();
        at.destroy().unwrap();
    });
}
