//! Quickstart: create a distributed global array over ARMCI-MPI, use
//! one-sided put/get/accumulate, and read the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use armci::Armci;
use armci_mpi::{ArmciMpi, Config};
use ga::{GaType, GlobalArray};
use mpisim::{Runtime, RuntimeConfig};
use simnet::PlatformId;

fn main() {
    // Record every RMA event (epochs, ops, staging) for the closing
    // observability report.
    obs::enable();
    // Four simulated MPI processes on the InfiniBand cluster model.
    let cfg = RuntimeConfig::on_platform(PlatformId::InfiniBandCluster);
    Runtime::run_with(4, cfg, |p| {
        // Bootstrap ARMCI-MPI (the paper's runtime) on this process,
        // using the MPI-3 epochless passive mode so the coalescing
        // scheduler can keep one queue per target open at a time.
        // `ProgressMode::Auto` turns on the per-node asynchronous
        // progress agent where the platform can dedicate a core to it —
        // passive-target traffic aimed at busy ranks is drained by the
        // agent instead of stalling until the target re-enters MPI.
        let rt = ArmciMpi::with_config(
            p,
            Config {
                epochless: true,
                progress: armci_mpi::ProgressMode::Auto,
                ..Config::default()
            },
        );

        // Collectively create an 8×8 shared array of f64, block
        // distributed across the four processes.
        let a = GlobalArray::create(&rt, "demo", GaType::F64, &[8, 8]).unwrap();
        a.zero().unwrap();

        // Rank 0 writes a patch spanning several owners with one call;
        // the GA layer fans it out into strided ARMCI operations
        // (Figure 2 of the paper).
        if rt.rank() == 0 {
            let patch: Vec<f64> = (0..36).map(|i| i as f64).collect();
            a.put_patch(&[1, 1], &[7, 7], &patch).unwrap();
        }
        a.sync();

        // Everyone accumulates 0.5 into the centre (atomic per element).
        a.acc_patch(0.5, &[3, 3], &[5, 5], &[1.0; 4]).unwrap();
        a.sync();

        // Rank 0 streams one row per nonblocking put; the coalescing
        // scheduler queues them per target, merges adjacent spans, and
        // issues each train under a single coarsened epoch.
        if rt.rank() == 0 {
            let mut pending = Vec::new();
            for row in 0..4 {
                let data = vec![row as f64; 8];
                pending.push(a.nb_put_patch(&[row, 0], &[row + 1, 8], &data).unwrap());
            }
            for h in pending {
                a.nb_wait(h).unwrap();
            }
        }
        a.sync();

        // Every rank claims task tickets from a shared NXTVAL counter —
        // the §V-D hot counter, served here by native MPI-3 fetch_and_op
        // (the default atomics mode) behind a per-node sharded cache.
        let counter = armci_mpi::NxtvalCounter::create(&rt, 8).unwrap();
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(counter.next(&rt).unwrap());
        }
        rt.barrier();
        counter.drain(&rt).unwrap();
        rt.barrier();
        if rt.rank() == 1 {
            println!("rank 1 claimed tickets {tickets:?}");
        }
        counter.destroy(&rt).unwrap();

        // Any process can read any patch, one-sided.
        if rt.rank() == 2 {
            let centre = a.get_patch(&[3, 3], &[5, 5]).unwrap();
            println!("centre patch as seen by rank 2: {centre:?}");
            let full_sum: f64 = a.get_patch(&[0, 0], &[8, 8]).unwrap().iter().sum();
            println!("sum of all elements: {full_sum}");
            println!("virtual time on rank 2: {:.3} µs", p.clock().now() * 1e6);
        }

        a.sync();

        // The runtime keeps per-stage counters for every transfer it
        // executed, including the registration-aware staging pool that
        // backs accumulate/strided scratch buffers.
        if rt.rank() == 0 {
            let s = rt.stage_stats();
            println!(
                "engine: {} plans, {} ops executed, {} epochs acquired",
                s.plans, s.executed_ops, s.acquires
            );
            let takes = s.pool_hits + s.pool_misses;
            let hit_rate = if takes > 0 {
                s.pool_hits as f64 / takes as f64
            } else {
                0.0
            };
            println!(
                "staging pool: {} takes, {:.0}% hit rate, {:.3} µs registering",
                takes,
                hit_rate * 100.0,
                s.pool_reg_s * 1e6
            );
            println!(
                "scheduler: {} ops coalesced away, {} epochs saved, {:.0}% dtype cache hits",
                s.sched_ops_merged(),
                s.sched_epochs_saved(),
                s.dtype_hit_rate() * 100.0
            );
            // Four ranks on the 8-core-node InfiniBand model share one
            // node, so node-local transfers take the shared-memory
            // load/store fast path instead of the NIC.
            println!(
                "shm tier: {} intra-node hits ({:.0}% of routed ops), {} B bypassed the NIC",
                s.shm_hits,
                s.shm_hit_rate() * 100.0,
                s.shm_bypass_bytes
            );
            // The synchronization stack: which RMW discipline served the
            // ticket claims, and how contended the shard CAS was.
            let o = rt.stats();
            let retry_rate = if o.rmws > 0 {
                o.cas_retries as f64 / o.rmws as f64
            } else {
                0.0
            };
            println!(
                "atomics: mode {} ({} native, {} mutex-fallback, {:.2} CAS retries/op)",
                rt.atomics_mode_name(),
                o.rmw_native,
                o.rmw_mutex_fallback,
                retry_rate
            );
            // Which progress discipline `Auto` resolved to on this
            // platform/backend combination.
            println!("progress: mode {}", rt.progress_mode_name());
        }

        a.sync();
        a.destroy().unwrap();
    });

    // Fold every rank's recorded events into the one-screen obs report
    // (ops and bytes per kind, epoch counts and hold time, pool
    // hit-rate), then check the trace against the epoch invariants.
    let events = obs::take();
    let reg = obs::metrics::Registry::from_events(&events);
    print!("{}", reg.render());
    // Where was blocked time spent, and what would speeding it up buy?
    let ws = obs::waitstate::analyze(&events);
    println!(
        "waits: top category `{}`, post-agent progress.stall_s={:.6} \
         ({} ops drained by the agent), {:.0}% of non-compute time attributed",
        ws.top_category().map(|(c, _)| c).unwrap_or("none"),
        reg.time("progress.stall_s"),
        reg.counter("progress.agent_ops"),
        ws.attributed_fraction() * 100.0
    );
    let violations = obs::audit::audit(&events);
    if violations.is_empty() {
        println!("epoch audit: clean ({} events)", events.len());
    } else {
        for v in &violations {
            eprintln!("epoch audit: {v}");
        }
    }

    // A taste of the workload suite (crates/workloads): the
    // KV/parameter-server driver on the same stack, checked against its
    // linearizable-counter oracle. `figures -- workloads` sweeps this
    // plus the graph and stencil drivers across every Config axis.
    let kv_opts = workloads::KvOpts::default();
    let kv = workloads::kv::execute(
        4,
        RuntimeConfig::on_platform(PlatformId::InfiniBandCluster),
        Config::default(),
        &kv_opts,
    );
    workloads::kv::verify(&kv_opts, &kv).expect("kv oracle");
    println!(
        "workload suite: kv driver linearized {} hot-key RMW/get ops over {} keys \
         in {:.3} ms virtual (oracle ok; graph + stencil drivers ride the same stack)",
        kv.iter().map(|r| r.ops).sum::<u64>(),
        kv_opts.keys,
        kv.iter().map(|r| r.elapsed_s).fold(0.0, f64::max) * 1e3,
    );
    println!("quickstart finished.");
}
