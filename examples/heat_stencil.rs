//! Domain scenario: explicit 2-D heat diffusion on a global array.
//!
//! Each process owns one block of the temperature field and, per step,
//! *gets* a one-cell halo around its block (one-sided reads from the
//! neighbouring owners — no message matching, no ghost-exchange
//! choreography: the PGAS advantage GA's intro argues for) and writes the
//! updated interior back with a single patch put.
//!
//! ```sh
//! cargo run --example heat_stencil [steps]
//! ```

use armci::Armci;
use armci_mpi::ArmciMpi;
use ga::{GaType, GlobalArray};
use mpisim::{Runtime, RuntimeConfig};
use simnet::PlatformId;

const N: usize = 24;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let cfg = RuntimeConfig::on_platform(PlatformId::CrayXT5);
    let totals = Runtime::run_with(6, cfg, move |p| {
        let rt = ArmciMpi::new(p);
        let a = GlobalArray::create(&rt, "heat", GaType::F64, &[N, N]).unwrap();
        let b = GlobalArray::create(&rt, "heat'", GaType::F64, &[N, N]).unwrap();
        a.zero().unwrap();
        b.zero().unwrap();

        // hot spot in the centre, cold boundary
        if rt.rank() == 0 {
            a.put_patch(
                &[N / 2 - 1, N / 2 - 1],
                &[N / 2 + 1, N / 2 + 1],
                &[100.0; 4],
            )
            .unwrap();
        }
        a.sync();

        let (src, dst) = (&a, &b);
        let (mut src, mut dst) = (src, dst);
        for _step in 0..steps {
            let (lo, hi) = dst.my_block();
            if lo.iter().zip(&hi).all(|(&l, &h)| l < h) {
                // halo-extended read window, clamped at the boundary
                let glo = [lo[0].saturating_sub(1), lo[1].saturating_sub(1)];
                let ghi = [(hi[0] + 1).min(N), (hi[1] + 1).min(N)];
                let w = ghi[1] - glo[1];
                let halo = src.get_patch(&glo, &ghi).unwrap();
                let at = |i: usize, j: usize| -> f64 {
                    // global coords -> halo buffer coords, clamped
                    let bi = i.clamp(glo[0], ghi[0] - 1) - glo[0];
                    let bj = j.clamp(glo[1], ghi[1] - 1) - glo[1];
                    halo[bi * w + bj]
                };
                let mut next = Vec::with_capacity((hi[0] - lo[0]) * (hi[1] - lo[1]));
                for i in lo[0]..hi[0] {
                    for j in lo[1]..hi[1] {
                        let centre = at(i, j);
                        let lap = at(i.saturating_sub(1), j)
                            + at((i + 1).min(N - 1), j)
                            + at(i, j.saturating_sub(1))
                            + at(i, (j + 1).min(N - 1))
                            - 4.0 * centre;
                        next.push(centre + 0.2 * lap);
                    }
                }
                dst.put_patch(&lo, &hi, &next).unwrap();
            }
            dst.sync();
            std::mem::swap(&mut src, &mut dst);
        }

        // total heat is (approximately) conserved by the explicit scheme
        let ones = src.duplicate("ones").unwrap();
        ones.fill(1.0).unwrap();
        let total = src.dot(&ones).unwrap();
        ones.destroy().unwrap();
        let t = p.clock().now();
        a.sync();
        a.destroy().unwrap();
        b.destroy().unwrap();
        (total, t)
    });
    let (total, t) = totals[0];
    println!(
        "heat stencil: {N}x{N} field, {steps} steps on 6 ranks — total heat {total:.3} \
         (initial 400), virtual time {:.2} ms",
        t * 1e3
    );
}
