//! Compares the four ARMCI-MPI strided methods and native ARMCI on one
//! workload — a miniature of the paper's Figure 4 experiment.
//!
//! ```sh
//! cargo run --example strided_methods [platform]
//! ```
//! where `platform` is one of `bgp`, `ib` (default), `xt`, `xe`.

use armci::{Armci, StridedMethod};
use armci_mpi::{ArmciMpi, Config};
use armci_native::ArmciNative;
use mpisim::{Proc, Runtime, RuntimeConfig};
use simnet::PlatformId;

fn one_transfer<A: Armci>(p: &Proc, rt: &A, nsegs: usize, seg: usize) -> f64 {
    let bases = rt.malloc(nsegs * seg * 2).unwrap();
    rt.barrier();
    let mut bw = 0.0;
    if p.rank() == 0 {
        let local = vec![1u8; nsegs * seg];
        let t0 = p.clock().now();
        rt.put_strided(&local, &[seg], bases[1], &[2 * seg], &[seg, nsegs])
            .unwrap();
        bw = (nsegs * seg) as f64 / (p.clock().now() - t0);
    }
    rt.barrier();
    rt.free(bases[p.rank()]).unwrap();
    bw
}

fn main() {
    let platform = match std::env::args().nth(1).as_deref() {
        Some("bgp") => PlatformId::BlueGeneP,
        Some("xt") => PlatformId::CrayXT5,
        Some("xe") => PlatformId::CrayXE6,
        _ => PlatformId::InfiniBandCluster,
    };
    println!("platform: {}", platform.name());
    println!(
        "{:<18} {:>14} {:>14}",
        "method", "16B x 1024", "1KiB x 1024"
    );

    let methods = [
        ("Native", None),
        ("Direct", Some(StridedMethod::Direct)),
        ("IOV-Direct", Some(StridedMethod::IovDatatype)),
        ("IOV-Batched", Some(StridedMethod::IovBatched { batch: 0 })),
        ("IOV-Consrv", Some(StridedMethod::IovConservative)),
        ("Auto", Some(StridedMethod::Auto)),
    ];
    for (label, method) in methods {
        let cfg = RuntimeConfig::on_platform(platform);
        let bws = Runtime::run_with(2, cfg, move |p| match method {
            None => {
                let rt = ArmciNative::new(p);
                (
                    one_transfer(p, &rt, 1024, 16),
                    one_transfer(p, &rt, 1024, 1024),
                )
            }
            Some(m) => {
                let rt = ArmciMpi::with_config(
                    p,
                    Config {
                        strided: m,
                        iov: m,
                        ..Default::default()
                    },
                );
                (
                    one_transfer(p, &rt, 1024, 16),
                    one_transfer(p, &rt, 1024, 1024),
                )
            }
        })
        .swap_remove(0);
        println!(
            "{label:<18} {:>10.3} GB/s {:>10.3} GB/s",
            bws.0 / 1e9,
            bws.1 / 1e9
        );
    }
}
